//===- harness/ShardStore.h - Durable per-cell result store ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign fabric's shard store (DESIGN.md Sec. 16). A campaign
/// directory holds:
///
///   manifest.json      the grid, seed, runs, oracle setting and schema,
///                      written atomically once; every worker joining the
///                      directory must match it byte for byte
///   shard-NNNN.jsonl   append-only logs of CRC-framed single-line JSON
///                      records, one self-describing record per completed
///                      cell, fsync'd per append; each worker process
///                      claims its own shard file via O_EXCL
///
/// Invariants: records are keyed by canonical cell identity, so merging
/// is order-independent and idempotent — duplicates (two workers racing
/// the same stripe, or a re-run without --resume) carry identical bytes
/// and are deduped; a crash can tear at most the tail record of one
/// shard, which loaders detect by CRC and truncate with a warning.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_SHARDSTORE_H
#define GPUWMM_HARNESS_SHARDSTORE_H

#include "harness/Campaign.h"
#include "support/ShardIo.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gpuwmm {
namespace harness {

/// One durable per-cell result: the self-describing payload of a shard
/// record. Carries the cell's identity (names, not indices), its derived
/// seed (so merges can detect seed-scheme drift) and every count the
/// schema-v2 report needs.
struct ShardRecord {
  bool IsLitmus = false;
  std::string Chip;
  std::string Env;  ///< App cells only.
  std::string App;  ///< App cells only.
  std::string Test; ///< Litmus cells only.
  uint64_t Seed = 0;
  unsigned Runs = 0;
  unsigned Errors = 0;   ///< App cells only.
  unsigned Timeouts = 0; ///< App cells only.
  unsigned Weak = 0;     ///< Litmus cells only.
  unsigned OracleChecked = 0;
  unsigned OracleViolations = 0;

  /// The record's cell identity: "app/<chip>/<env>/<app>" or
  /// "litmus/<chip>/<test>" (matches WorkList keys).
  std::string key() const;

  /// Renders the record as a single-line JSON object.
  std::string toJson() const;

  /// Parses a record payload. nullopt + \p Err on malformed input.
  static std::optional<ShardRecord> fromJson(std::string_view Payload,
                                             std::string *Err);

  bool operator==(const ShardRecord &O) const = default;
};

/// The canonical manifest text for \p Config — stable key order and
/// formatting, so "same campaign" is a byte comparison.
std::string campaignManifestJson(const CampaignConfig &Config);

/// Reconstructs a CampaignConfig from manifest text (chips, envs, apps
/// and litmus tests are resolved against the built-in tables). False +
/// \p Err on malformed text or names this build does not know.
bool parseCampaignManifest(const std::string &Text, CampaignConfig &Config,
                           std::string *Err);

/// Reads and parses \p Dir's manifest.json.
bool loadCampaignManifest(const std::string &Dir, CampaignConfig &Config,
                          std::string *Err);

/// A worker's handle on a campaign directory: creates the directory and
/// manifest if needed (or byte-verifies the existing manifest), then
/// appends one durable record per completed cell to a private shard file
/// claimed on first append.
class ShardStore {
public:
  /// Opens \p Dir for \p Config. Creates the directory (one level) and
  /// atomically publishes the manifest when absent; when present, the
  /// existing manifest must equal campaignManifestJson(Config) byte for
  /// byte — a mismatch (different grid, seed, runs, oracle or tool
  /// version) fails rather than silently mixing campaigns.
  static std::optional<ShardStore> open(const std::string &Dir,
                                        const CampaignConfig &Config,
                                        std::string *Err);

  /// Durably appends one record: framed, written, fsync'd. The first
  /// append claims a fresh shard-NNNN.jsonl via O_EXCL.
  bool append(const ShardRecord &Record, std::string *Err);

  /// The shard file this store appends to; empty until the first append.
  const std::string &shardPath() const { return Log.path(); }
  const std::string &dir() const { return Directory; }

private:
  std::string Directory;
  RecordLog Log;
};

/// Every durable record in \p Dir: all shard-*.jsonl files in sorted
/// name order, deduplicated by cell identity (first occurrence wins —
/// determinism makes duplicates byte-equal; a *conflicting* duplicate is
/// reported as corruption and fails the load). Torn tails are truncated
/// and surfaced as warnings, not errors.
struct LoadedShards {
  std::vector<ShardRecord> Records;      ///< Deduped, load order.
  std::map<std::string, size_t> ByKey;   ///< key() -> index in Records.
  unsigned ShardFiles = 0;
  unsigned Duplicates = 0;
  unsigned TornShards = 0;
  std::vector<std::string> Warnings;
};

bool loadCampaignShards(const std::string &Dir, LoadedShards &Out,
                        std::string *Err);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_SHARDSTORE_H
