//===- harness/EnvironmentRunner.cpp - Tab. 5 experiment driver --------------===//

#include "harness/EnvironmentRunner.h"

using namespace gpuwmm;
using namespace gpuwmm::harness;

CellResult harness::runCell(apps::AppKind App, const sim::ChipProfile &Chip,
                            const stress::Environment &Env,
                            const stress::TunedStressParams &Tuned,
                            unsigned Runs, uint64_t Seed) {
  CellResult Cell;
  Cell.Runs = Runs;
  Rng Master(Seed);
  for (unsigned I = 0; I != Runs; ++I) {
    const apps::AppVerdict V = apps::runApplicationOnce(
        App, Chip, Env, Tuned, /*Policy=*/nullptr, Master.fork(I).next());
    if (apps::isErroneous(V))
      ++Cell.Errors;
    if (V == apps::AppVerdict::Timeout)
      ++Cell.Timeouts;
  }
  return Cell;
}

EnvironmentSummary harness::runEnvironmentSummary(
    const sim::ChipProfile &Chip, const stress::Environment &Env,
    const stress::TunedStressParams &Tuned, unsigned Runs, uint64_t Seed) {
  EnvironmentSummary Summary;
  for (apps::AppKind App : apps::AllAppKinds) {
    const CellResult Cell =
        runCell(App, Chip, Env, Tuned, Runs,
                Seed * 1315423911u + static_cast<uint64_t>(App));
    Summary.AppsWithErrors += Cell.observed();
    Summary.AppsEffective += Cell.effective();
  }
  return Summary;
}
