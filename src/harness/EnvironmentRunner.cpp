//===- harness/EnvironmentRunner.cpp - Tab. 5 experiment driver --------------===//

#include "harness/EnvironmentRunner.h"

#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::harness;

namespace {

/// Runs one application execution and returns its verdict. Pure in its
/// arguments: the parallel engine's unit of work. The leased context is
/// the calling worker's recycled execution engine — context history never
/// affects results (DESIGN.md Sec. 12), so distribution stays a pure
/// wall-clock knob.
apps::AppVerdict runOne(apps::AppKind App, const sim::ChipProfile &Chip,
                        const stress::Environment &Env,
                        const stress::TunedStressParams &Tuned,
                        uint64_t RunSeed) {
  sim::ContextLease Ctx;
  return apps::runApplicationOnce(Ctx.get(), App, Chip, Env, Tuned,
                                  /*Policy=*/nullptr, RunSeed);
}

/// Folds per-run verdicts into a CellResult. The fold is a commutative
/// count, but we still reduce in index order so the accumulation is the
/// same expression serial execution evaluates.
void accumulate(CellResult &Cell, apps::AppVerdict V) {
  if (apps::isErroneous(V))
    ++Cell.Errors;
  if (V == apps::AppVerdict::Timeout)
    ++Cell.Timeouts;
}

} // namespace

CellResult harness::runCell(apps::AppKind App, const sim::ChipProfile &Chip,
                            const stress::Environment &Env,
                            const stress::TunedStressParams &Tuned,
                            unsigned Runs, uint64_t Seed, ThreadPool *Pool) {
  CellResult Cell;
  Cell.Runs = Runs;
  std::vector<apps::AppVerdict> Verdicts(Runs);
  parallelFor(Pool, Runs, [&](size_t I) {
    Verdicts[I] = runOne(App, Chip, Env, Tuned,
                         Rng::deriveStream(Seed, static_cast<uint64_t>(I)));
  });
  for (apps::AppVerdict V : Verdicts)
    accumulate(Cell, V);
  return Cell;
}

EnvironmentSummary harness::runEnvironmentSummary(
    const sim::ChipProfile &Chip, const stress::Environment &Env,
    const stress::TunedStressParams &Tuned, unsigned Runs, uint64_t Seed,
    ThreadPool *Pool) {
  const size_t NumApps = apps::AllAppKinds.size();
  // Flatten (app, run) into one index space so small per-app run counts
  // still fill every worker.
  std::vector<apps::AppVerdict> Verdicts(NumApps * Runs);
  parallelFor(Pool, Verdicts.size(), [&](size_t I) {
    const size_t A = I / Runs;
    const uint64_t CellSeed = Rng::deriveStream(Seed, static_cast<uint64_t>(A));
    Verdicts[I] =
        runOne(apps::AllAppKinds[A], Chip, Env, Tuned,
               Rng::deriveStream(CellSeed, static_cast<uint64_t>(I % Runs)));
  });

  EnvironmentSummary Summary;
  for (size_t A = 0; A != NumApps; ++A) {
    CellResult Cell;
    Cell.Runs = Runs;
    for (unsigned I = 0; I != Runs; ++I)
      accumulate(Cell, Verdicts[A * Runs + I]);
    Summary.AppsWithErrors += Cell.observed();
    Summary.AppsEffective += Cell.effective();
  }
  return Summary;
}
