//===- harness/EnvironmentRunner.cpp - Tab. 5 experiment driver --------------===//

#include "harness/EnvironmentRunner.h"

#include "apps/AppCompile.h"
#include "sim/BatchExec.h"

#include <algorithm>
#include <vector>

using namespace gpuwmm;
using namespace gpuwmm::harness;

namespace {

/// Runs one contiguous chunk of a cell's runs on the calling worker's
/// leased context, writing per-run verdicts. The batch API dispatches to
/// the compiled-plan engine when the app lowers (and to the coroutine
/// path otherwise), so this is pure in its arguments either way: the
/// leased context is recycled worker state, and context history never
/// affects results (DESIGN.md Secs. 12, 19). Distribution — and now the
/// engine — stays a pure wall-clock knob.
void runChunk(apps::AppKind App, const sim::ChipProfile &Chip,
              const stress::Environment &Env,
              const stress::TunedStressParams &Tuned, uint64_t CellSeed,
              unsigned Begin, unsigned End, apps::AppVerdict *Verdicts) {
  std::vector<uint64_t> Seeds(End - Begin);
  for (unsigned I = Begin; I != End; ++I)
    Seeds[I - Begin] = Rng::deriveStream(CellSeed, static_cast<uint64_t>(I));
  sim::ContextLease Ctx;
  apps::runApplicationBatch(Ctx.get(), App, Chip, Env, Tuned,
                            /*Policy=*/nullptr, Seeds.data(),
                            Verdicts + Begin, Seeds.size());
}

/// Folds per-run verdicts into a CellResult. The fold is a commutative
/// count, but we still reduce in index order so the accumulation is the
/// same expression serial execution evaluates.
void accumulate(CellResult &Cell, apps::AppVerdict V) {
  if (apps::isErroneous(V))
    ++Cell.Errors;
  if (V == apps::AppVerdict::Timeout)
    ++Cell.Timeouts;
}

} // namespace

CellResult harness::runCell(apps::AppKind App, const sim::ChipProfile &Chip,
                            const stress::Environment &Env,
                            const stress::TunedStressParams &Tuned,
                            unsigned Runs, uint64_t Seed, ThreadPool *Pool) {
  CellResult Cell;
  Cell.Runs = Runs;
  // Chunk at the batch width: each work unit amortises one plan bind and
  // one register-slab setup over up to W runs.
  const unsigned W = sim::defaultBatchWidth();
  const size_t Chunks = (Runs + W - 1) / W;
  std::vector<apps::AppVerdict> Verdicts(Runs);
  parallelFor(Pool, Chunks, [&](size_t C) {
    const unsigned Begin = static_cast<unsigned>(C) * W;
    runChunk(App, Chip, Env, Tuned, Seed, Begin,
             std::min(Begin + W, Runs), Verdicts.data());
  });
  for (apps::AppVerdict V : Verdicts)
    accumulate(Cell, V);
  return Cell;
}

EnvironmentSummary harness::runEnvironmentSummary(
    const sim::ChipProfile &Chip, const stress::Environment &Env,
    const stress::TunedStressParams &Tuned, unsigned Runs, uint64_t Seed,
    ThreadPool *Pool) {
  const size_t NumApps = apps::AllAppKinds.size();
  // Flatten (app, chunk) into one index space so small per-app run counts
  // still fill every worker; chunks never straddle an app boundary (each
  // cell has its own seed stream and compiled plan).
  const unsigned W = sim::defaultBatchWidth();
  const size_t ChunksPerApp = (Runs + W - 1) / W;
  std::vector<apps::AppVerdict> Verdicts(NumApps * Runs);
  parallelFor(Pool, NumApps * ChunksPerApp, [&](size_t I) {
    const size_t A = I / ChunksPerApp;
    const unsigned Begin = static_cast<unsigned>(I % ChunksPerApp) * W;
    const uint64_t CellSeed = Rng::deriveStream(Seed, static_cast<uint64_t>(A));
    runChunk(apps::AllAppKinds[A], Chip, Env, Tuned, CellSeed, Begin,
             std::min(Begin + W, Runs), Verdicts.data() + A * Runs);
  });

  EnvironmentSummary Summary;
  for (size_t A = 0; A != NumApps; ++A) {
    CellResult Cell;
    Cell.Runs = Runs;
    for (unsigned I = 0; I != Runs; ++I)
      accumulate(Cell, Verdicts[A * Runs + I]);
    Summary.AppsWithErrors += Cell.observed();
    Summary.AppsEffective += Cell.effective();
  }
  return Summary;
}
