//===- harness/Campaign.h - Parallel Tab. 5 campaign engine ----*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the paper's full Tab. 5 grid — chips x testing environments x
/// applications — as one parallel campaign and renders a JSON report.
///
/// Every (chip, env, app, run) tuple owns an RNG stream derived from the
/// campaign seed and the tuple's *canonical* identity (its position in the
/// full Tab. 1 / Tab. 5 orderings, not in the user's selection), so:
///  * the report is byte-identical for any --jobs value, and
///  * a sub-grid campaign reproduces exactly the corresponding cells of
///    the full campaign at the same seed — the property the golden
///    regression tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_CAMPAIGN_H
#define GPUWMM_HARNESS_CAMPAIGN_H

#include "harness/EnvironmentRunner.h"
#include "litmus/Litmus.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace gpuwmm {
namespace harness {

/// The grid a campaign covers. Empty vectors are invalid; use
/// CampaignConfig::full() for the paper's complete grid.
struct CampaignConfig {
  std::vector<const sim::ChipProfile *> Chips;
  std::vector<stress::Environment> Envs;
  std::vector<apps::AppKind> Apps;
  /// Litmus catalog tests to run per chip alongside the app grid
  /// (gpuwmm campaign --litmus=a,b). Empty (the default) leaves the
  /// report byte-identical to a pre-litmus campaign.
  std::vector<const litmus::Program *> LitmusTests;
  unsigned Runs = 100;
  uint64_t Seed = 1;
  /// Cross-check every Nth run of every cell against the consistency
  /// oracle (gpuwmm campaign --oracle=N; --oracle=all means N=1): checked
  /// app runs stream their events through the incremental checker
  /// (model/StreamingChecker.h) and are validated against the model's
  /// axioms as they execute — no trace is retained, so memory stays
  /// bounded by the checker's frontier and checking every run is the
  /// default-capable path. Checked litmus runs additionally compare the
  /// checker's SC-vs-weak verdict with the operational outcome. 0 (the
  /// default) disables the oracle and keeps the oracle tally fields out
  /// of the JSON report entirely. The oracle observes only, so counts
  /// never depend on this setting.
  unsigned OracleEvery = 0;

  /// The paper's full Tab. 5 grid: 7 chips x 8 environments x 10 apps.
  static CampaignConfig full();
};

/// One (chip, environment, application) cell of the grid.
struct CampaignCell {
  const sim::ChipProfile *Chip = nullptr;
  stress::Environment Env;
  apps::AppKind App = apps::AppKind::CbeHt;
  CellResult Result;
  unsigned OracleChecked = 0;    ///< Runs validated (OracleEvery > 0).
  unsigned OracleViolations = 0; ///< Axiom violations among them.
};

/// One (chip, litmus test) cell: the best per-bank stress location's weak
/// count over Runs executions at the chip's default distance — the same
/// scan `gpuwmm litmus --stress` performs.
struct LitmusCampaignCell {
  const sim::ChipProfile *Chip = nullptr;
  const litmus::Program *Test = nullptr;
  unsigned Runs = 0;
  unsigned Weak = 0;
  unsigned OracleChecked = 0;   ///< Runs cross-checked (OracleEvery > 0).
  /// Axiom violations plus checker-vs-interpreter verdict disagreements.
  unsigned OracleViolations = 0;
};

/// A completed campaign: cells in chip-major (chip, env, app) order plus
/// the per-(chip, env) Tab. 5 "a/b" summaries in matching order.
struct CampaignReport {
  CampaignConfig Config;
  std::vector<CampaignCell> Cells;
  std::vector<EnvironmentSummary> Summaries; ///< Chips.size()*Envs.size().
  std::vector<LitmusCampaignCell> LitmusCells; ///< Chip-major, test order.

  const EnvironmentSummary &summary(size_t ChipIdx, size_t EnvIdx) const {
    return Summaries[ChipIdx * Config.Envs.size() + EnvIdx];
  }
};

/// The seed of cell (Chip, Env, App) under campaign seed \p Seed, derived
/// from canonical identities. Exposed so tests can cross-check cells
/// against direct runCell calls.
uint64_t campaignCellSeed(uint64_t Seed, const sim::ChipProfile &Chip,
                          const stress::Environment &Env, apps::AppKind App);

/// The seed of litmus cell (Chip, Test), derived from canonical chip and
/// catalog positions (disjoint from the app cells' stream space), so a
/// litmus sub-selection reproduces the full selection's cells.
uint64_t campaignLitmusSeed(uint64_t Seed, const sim::ChipProfile &Chip,
                            const litmus::Program &Test);

/// Runs the whole grid, distributing the flattened (cell, run) index space
/// over \p Pool (serial when null).
CampaignReport runCampaign(const CampaignConfig &Config,
                           ThreadPool *Pool = nullptr);

/// Runs one app cell at its canonical derived seed, parallelizing the
/// run index space over \p Pool. Counts are bit-identical to the same
/// cell inside runCampaign — the unit the sharded fabric executes and
/// the merge reassembles.
CampaignCell runCampaignAppCell(const CampaignConfig &Config,
                                const sim::ChipProfile &Chip,
                                const stress::Environment &Env,
                                apps::AppKind App,
                                ThreadPool *Pool = nullptr);

/// Runs one litmus cell (the per-bank stress scan) at its canonical
/// derived seed; bit-identical to the same cell inside runCampaign.
LitmusCampaignCell runCampaignLitmusCell(const CampaignConfig &Config,
                                         const sim::ChipProfile &Chip,
                                         const litmus::Program &Test);

/// How a sharded campaign worker runs (gpuwmm campaign --out-dir=DIR
/// [--resume] [--cells=A..B,K]; DESIGN.md Sec. 16).
struct FabricOptions {
  std::string Dir; ///< Campaign directory (manifest + shard files).
  /// Skip cells that already have a durable record in the store
  /// (tolerating torn tails: a torn cell is re-run).
  bool Resume = false;
  /// Work-list indices this worker covers (null = every cell), so N
  /// workers can stripe one grid with disjoint --cells= selections.
  const std::vector<size_t> *Selection = nullptr;
  /// Crash-injection test hook (GPUWMM_CAMPAIGN_CRASH_AFTER): SIGKILL
  /// this process immediately after the Nth durable append, proving
  /// --resume + report recover byte-identically. 0 = off.
  unsigned CrashAfterAppends = 0;
};

/// What a fabric worker did, for the CLI's stderr summary and tests.
struct FabricOutcome {
  unsigned Completed = 0; ///< Cells run and durably appended.
  unsigned Skipped = 0;   ///< Cells already durable (--resume).
  unsigned OracleViolations = 0; ///< Across this worker's cells.
  std::string ShardPath; ///< This worker's shard file ("" if none).
  std::vector<std::string> Warnings; ///< E.g. torn tails seen on resume.
};

/// Runs \p Config's cells as a sharded campaign worker: opens (or joins)
/// the store at \p Opts.Dir, then runs each selected cell and appends
/// one fsync'd record per completion — a SIGKILL at any point loses at
/// most the in-flight cell. False + \p Err on configuration or I/O
/// errors.
bool runCampaignFabric(const CampaignConfig &Config,
                       const FabricOptions &Opts, ThreadPool *Pool,
                       FabricOutcome &Out, std::string *Err);

/// Renders the report as JSON ("gpuwmm-campaign-v2"): a schema_version +
/// tool metadata header (name and build version only — never wall-clock
/// or host information, so output is byte-stable across machines and job
/// counts), the grid, every cell's counts, the Tab. 5 summaries, and —
/// when the oracle ran — per-cell oracle tallies.
void writeCampaignJson(const CampaignReport &Report, std::ostream &OS);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_CAMPAIGN_H
