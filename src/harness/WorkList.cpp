//===- harness/WorkList.cpp - Campaign cell descriptors ----------------------===//

#include "harness/WorkList.h"

#include <algorithm>
#include <cctype>

using namespace gpuwmm;
using namespace gpuwmm::harness;

std::vector<CampaignWorkItem>
harness::buildWorkList(const CampaignConfig &Config) {
  std::vector<CampaignWorkItem> Work;
  Work.reserve(Config.Chips.size() * Config.Envs.size() *
                   Config.Apps.size() +
               Config.Chips.size() * Config.LitmusTests.size());
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (size_t E = 0; E != Config.Envs.size(); ++E)
      for (size_t A = 0; A != Config.Apps.size(); ++A) {
        CampaignWorkItem Item;
        Item.ItemKind = CampaignWorkItem::Kind::App;
        Item.ChipIdx = C;
        Item.EnvIdx = E;
        Item.AppIdx = A;
        Work.push_back(Item);
      }
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (size_t T = 0; T != Config.LitmusTests.size(); ++T) {
      CampaignWorkItem Item;
      Item.ItemKind = CampaignWorkItem::Kind::Litmus;
      Item.ChipIdx = C;
      Item.TestIdx = T;
      Work.push_back(Item);
    }
  return Work;
}

std::string harness::workItemKey(const CampaignConfig &Config,
                                 const CampaignWorkItem &Item) {
  const std::string Chip = Config.Chips[Item.ChipIdx]->ShortName;
  if (Item.ItemKind == CampaignWorkItem::Kind::Litmus)
    return "litmus/" + Chip + "/" + Config.LitmusTests[Item.TestIdx]->Name;
  return "app/" + Chip + "/" + Config.Envs[Item.EnvIdx].name() + "/" +
         apps::appName(Config.Apps[Item.AppIdx]);
}

uint64_t harness::workItemSeed(const CampaignConfig &Config,
                               const CampaignWorkItem &Item) {
  if (Item.ItemKind == CampaignWorkItem::Kind::Litmus)
    return campaignLitmusSeed(Config.Seed, *Config.Chips[Item.ChipIdx],
                              *Config.LitmusTests[Item.TestIdx]);
  return campaignCellSeed(Config.Seed, *Config.Chips[Item.ChipIdx],
                          Config.Envs[Item.EnvIdx],
                          Config.Apps[Item.AppIdx]);
}

namespace {

/// Parses a plain non-negative decimal index; false on anything else.
bool parseIndex(const std::string &Text, size_t &Out) {
  if (Text.empty() || Text.size() > 18)
    return false;
  size_t V = 0;
  for (char C : Text) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<size_t>(C - '0');
  }
  Out = V;
  return true;
}

} // namespace

std::optional<std::vector<size_t>>
harness::parseCellSelection(const std::string &Spec, size_t NumCells,
                            std::string &Err) {
  const auto Malformed = [&](const std::string &Item) {
    Err = "--cells expects comma-separated cell indices or A..B ranges "
          "within 0.." +
          std::to_string(NumCells == 0 ? 0 : NumCells - 1) + " (got '" +
          Item + "')";
    return std::nullopt;
  };

  std::vector<size_t> Out;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    const size_t Comma = std::min(Spec.find(',', Pos), Spec.size());
    const std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      return Malformed(Item);
    size_t Lo = 0, Hi = 0;
    const size_t Dots = Item.find("..");
    if (Dots == std::string::npos) {
      if (!parseIndex(Item, Lo))
        return Malformed(Item);
      Hi = Lo;
    } else {
      if (!parseIndex(Item.substr(0, Dots), Lo) ||
          !parseIndex(Item.substr(Dots + 2), Hi) || Hi < Lo)
        return Malformed(Item);
    }
    if (Hi >= NumCells)
      return Malformed(Item);
    for (size_t I = Lo; I <= Hi; ++I)
      Out.push_back(I);
    if (Comma == Spec.size())
      break;
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
