//===- harness/CostBenchmark.h - Sec. 6 fence-cost study --------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Sec. 6 cost study: benchmark each application natively
/// (no testing environment) under three fencing configurations — no
/// fences, fences found by empirical insertion ("emp"), and a fence after
/// every access ("cons") — recording runtime and (on chips with power
/// instrumentation) energy. Runs failing the post-condition are discarded,
/// as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_COSTBENCHMARK_H
#define GPUWMM_HARNESS_COSTBENCHMARK_H

#include "apps/Application.h"
#include "sim/FencePolicy.h"

namespace gpuwmm {
namespace harness {

/// Averaged cost of one (chip, app, fence-config) combination.
struct CostMeasurement {
  double RuntimeMs = 0.0;
  double EnergyJ = 0.0;
  bool EnergyValid = false;
  unsigned RunsUsed = 0;      ///< Runs that passed the post-condition.
  unsigned RunsDiscarded = 0; ///< Erroneous runs, excluded from averages.
};

/// Benchmarks \p App natively on \p Chip under fence policy \p Fences,
/// averaging over \p Runs passing executions.
CostMeasurement measureCost(apps::AppKind App, const sim::ChipProfile &Chip,
                            const sim::FencePolicy &Fences, unsigned Runs,
                            uint64_t Seed);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_COSTBENCHMARK_H
