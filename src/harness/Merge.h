//===- harness/Merge.h - Shard-to-report merge ------------------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges a campaign directory's shards back into the monolithic
/// CampaignReport (DESIGN.md Sec. 16). The merge is order-independent
/// and idempotent: records may arrive in any shard, in any order, from
/// any number of workers, with duplicates and a torn tail — the result
/// is byte-identical to the single-process report for the same config,
/// because cells are placed by work-list position and summaries are
/// recomputed from the cells exactly as runCampaign computes them.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_MERGE_H
#define GPUWMM_HARNESS_MERGE_H

#include "harness/Campaign.h"

#include <string>
#include <vector>

namespace gpuwmm {
namespace harness {

/// What a merge saw: counts for reporting, warnings to surface (torn
/// tails, duplicates), and — when the merge failed for incompleteness —
/// the missing cell identities, so callers can distinguish "resume me"
/// (exit 1) from malformed input (exit 2).
struct MergeStats {
  size_t CellsMerged = 0;
  unsigned ShardFiles = 0;
  unsigned Duplicates = 0;
  unsigned TornShards = 0;
  std::vector<std::string> MissingCells;
  std::vector<std::string> Warnings;
};

/// Rebuilds the full CampaignReport from \p Dir's manifest and shards.
/// On success, writeCampaignJson(Report) is byte-identical to the
/// uninterrupted single-process campaign at the manifest's config.
/// Fails when the manifest is unreadable, a record is corrupt, a record
/// contradicts the manifest (wrong runs or derived seed — seed-scheme
/// drift), or cells are missing (\p Stats.MissingCells is then
/// non-empty: the campaign needs `campaign --resume`, not `report`).
bool mergeCampaignShards(const std::string &Dir, CampaignReport &Report,
                         MergeStats &Stats, std::string *Err);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_MERGE_H
