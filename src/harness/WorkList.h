//===- harness/WorkList.h - Campaign cell descriptors ----------*- C++ -*-===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign fabric's unit of work (DESIGN.md Sec. 16): a flat,
/// ordered list of cell descriptors over a CampaignConfig. App cells come
/// first in chip-major (chip, env, app) selection order, then litmus
/// cells in (chip, test) order — exactly the layout writeCampaignJson
/// renders, so a merge that fills cells in work-list order reproduces the
/// monolithic report byte for byte.
///
/// Each descriptor has a self-describing string key built from canonical
/// names ("app/titan/sys-str+/cbe-dot", "litmus/k20/MP") — the identity
/// shard records carry and merges dedupe by — and a canonical-identity
/// seed (PR 2's scheme), which is what makes every cell independently
/// replayable by any worker.
///
//===----------------------------------------------------------------------===//

#ifndef GPUWMM_HARNESS_WORKLIST_H
#define GPUWMM_HARNESS_WORKLIST_H

#include "harness/Campaign.h"

#include <optional>
#include <string>
#include <vector>

namespace gpuwmm {
namespace harness {

/// One schedulable unit of a campaign: an app cell or a litmus cell,
/// referenced by its position in the config's selection vectors.
struct CampaignWorkItem {
  enum class Kind { App, Litmus };
  Kind ItemKind = Kind::App;
  size_t ChipIdx = 0;
  size_t EnvIdx = 0;  ///< App cells only.
  size_t AppIdx = 0;  ///< App cells only.
  size_t TestIdx = 0; ///< Litmus cells only.
};

/// The flattened cell list of \p Config in report order: all app cells
/// chip-major over the selection, then all litmus cells.
std::vector<CampaignWorkItem> buildWorkList(const CampaignConfig &Config);

/// The self-describing identity of \p Item under \p Config:
/// "app/<chip>/<env>/<app>" or "litmus/<chip>/<test>".
std::string workItemKey(const CampaignConfig &Config,
                        const CampaignWorkItem &Item);

/// The canonical-identity seed of \p Item (campaignCellSeed or
/// campaignLitmusSeed), recorded per shard record so merges can detect
/// seed-scheme drift.
uint64_t workItemSeed(const CampaignConfig &Config,
                      const CampaignWorkItem &Item);

/// Parses a `--cells=` striping spec — comma-separated 0-based indices
/// and inclusive "A..B" ranges into the work list ("0..11,30") — into a
/// sorted, deduplicated index set. Malformed items (non-numeric, empty,
/// inverted or out-of-range against \p NumCells) yield nullopt with a
/// clear message in \p Err; callers exit 2, matching the getPositiveInt
/// convention.
std::optional<std::vector<size_t>>
parseCellSelection(const std::string &Spec, size_t NumCells,
                   std::string &Err);

} // namespace harness
} // namespace gpuwmm

#endif // GPUWMM_HARNESS_WORKLIST_H
