//===- harness/Campaign.cpp - Parallel Tab. 5 campaign engine ----------------===//

#include "harness/Campaign.h"

#include <algorithm>
#include <cassert>
#include <ostream>

using namespace gpuwmm;
using namespace gpuwmm::harness;

namespace {

/// Canonical position of \p Chip in the Tab. 1 ordering.
uint64_t canonicalChipIndex(const sim::ChipProfile &Chip) {
  size_t Count = 0;
  const sim::ChipProfile *All = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I)
    if (&All[I] == &Chip)
      return I;
  assert(false && "chip not in the canonical table");
  return 0;
}

/// Canonical position of \p Env in the Tab. 5 column ordering.
uint64_t canonicalEnvIndex(const stress::Environment &Env) {
  const auto &All = stress::Environment::all();
  for (size_t I = 0; I != All.size(); ++I)
    if (All[I].Kind == Env.Kind && All[I].Randomise == Env.Randomise)
      return I;
  assert(false && "environment not in the canonical table");
  return 0;
}

/// Canonical position of \p App in the Tab. 4 ordering.
uint64_t canonicalAppIndex(apps::AppKind App) {
  for (size_t I = 0; I != apps::AllAppKinds.size(); ++I)
    if (apps::AllAppKinds[I] == App)
      return I;
  assert(false && "app not in the canonical table");
  return 0;
}

/// Canonical position of \p Test in the litmus catalog.
uint64_t canonicalLitmusIndex(const litmus::Program &Test) {
  const auto &All = litmus::catalog();
  for (size_t I = 0; I != All.size(); ++I)
    if (All[I].Name == Test.Name)
      return I;
  assert(false && "litmus test not in the catalog");
  return 0;
}

} // namespace

CampaignConfig CampaignConfig::full() {
  CampaignConfig Config;
  size_t Count = 0;
  const sim::ChipProfile *All = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I)
    Config.Chips.push_back(&All[I]);
  for (const stress::Environment &Env : stress::Environment::all())
    Config.Envs.push_back(Env);
  for (apps::AppKind App : apps::AllAppKinds)
    Config.Apps.push_back(App);
  return Config;
}

uint64_t harness::campaignCellSeed(uint64_t Seed,
                                   const sim::ChipProfile &Chip,
                                   const stress::Environment &Env,
                                   apps::AppKind App) {
  // Pack the canonical identity into one stream index. The factors are the
  // full table sizes, not the selection sizes, so a sub-grid draws the
  // same streams as the full grid.
  const uint64_t NumEnvs = stress::Environment::all().size();
  const uint64_t NumApps = apps::AllAppKinds.size();
  const uint64_t Packed =
      (canonicalChipIndex(Chip) * NumEnvs + canonicalEnvIndex(Env)) *
          NumApps +
      canonicalAppIndex(App);
  return Rng::deriveStream(Seed, Packed);
}

uint64_t harness::campaignLitmusSeed(uint64_t Seed,
                                     const sim::ChipProfile &Chip,
                                     const litmus::Program &Test) {
  // A stream space disjoint from the app cells' (whose packed indices are
  // bounded by the full grid size, far below 1 << 20).
  const uint64_t Packed =
      (uint64_t{1} << 20) +
      canonicalChipIndex(Chip) * litmus::catalog().size() +
      canonicalLitmusIndex(Test);
  return Rng::deriveStream(Seed, Packed);
}

CampaignReport harness::runCampaign(const CampaignConfig &Config,
                                    ThreadPool *Pool) {
  assert(!Config.Chips.empty() && !Config.Envs.empty() &&
         !Config.Apps.empty() && "empty campaign grid");
  CampaignReport Report;
  Report.Config = Config;

  // Lay out the cells (and their tuned parameters) up front, then flatten
  // (cell, run) into one index space: with only tens of cells but
  // hundreds of runs each, cell-level distribution alone would starve
  // workers at the tail.
  Report.Cells.reserve(Config.Chips.size() * Config.Envs.size() *
                       Config.Apps.size());
  std::vector<stress::TunedStressParams> Tuned;
  Tuned.reserve(Config.Chips.size());
  for (const sim::ChipProfile *Chip : Config.Chips)
    Tuned.push_back(stress::TunedStressParams::paperDefaults(*Chip));
  std::vector<uint64_t> CellSeeds;
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (const stress::Environment &Env : Config.Envs)
      for (apps::AppKind App : Config.Apps) {
        CampaignCell Cell;
        Cell.Chip = Config.Chips[C];
        Cell.Env = Env;
        Cell.App = App;
        Cell.Result.Runs = Config.Runs;
        Report.Cells.push_back(Cell);
        CellSeeds.push_back(
            campaignCellSeed(Config.Seed, *Config.Chips[C], Env, App));
      }

  const size_t CellsPerChip = Config.Envs.size() * Config.Apps.size();
  std::vector<apps::AppVerdict> Verdicts(Report.Cells.size() * Config.Runs);
  parallelFor(Pool, Verdicts.size(), [&](size_t I) {
    // One recycled execution engine per worker thread: the campaign's
    // millions of runs share a handful of contexts instead of
    // reconstructing the simulator per run (DESIGN.md Sec. 12).
    sim::ContextLease Ctx;
    const size_t CellIdx = I / Config.Runs;
    const unsigned Run = static_cast<unsigned>(I % Config.Runs);
    const CampaignCell &Cell = Report.Cells[CellIdx];
    Verdicts[I] = apps::runApplicationOnce(
        Ctx.get(), Cell.App, *Cell.Chip, Cell.Env,
        Tuned[CellIdx / CellsPerChip],
        /*Policy=*/nullptr, Rng::deriveStream(CellSeeds[CellIdx], Run));
  });

  for (size_t CellIdx = 0; CellIdx != Report.Cells.size(); ++CellIdx) {
    CellResult &R = Report.Cells[CellIdx].Result;
    for (unsigned Run = 0; Run != Config.Runs; ++Run) {
      const apps::AppVerdict V = Verdicts[CellIdx * Config.Runs + Run];
      if (apps::isErroneous(V))
        ++R.Errors;
      if (V == apps::AppVerdict::Timeout)
        ++R.Timeouts;
    }
  }

  // Litmus cells: for each (chip, test), the `gpuwmm litmus --stress`
  // scan — Runs executions per per-bank stress location, best location's
  // weak count — at the chip's default distance. Each cell owns a
  // canonical-identity seed, so results are job-count independent and a
  // sub-selection reproduces the full selection.
  if (!Config.LitmusTests.empty()) {
    Report.LitmusCells.resize(Config.Chips.size() *
                              Config.LitmusTests.size());
    parallelFor(Pool, Report.LitmusCells.size(), [&](size_t I) {
      const sim::ChipProfile &Chip =
          *Config.Chips[I / Config.LitmusTests.size()];
      const litmus::Program &Test =
          *Config.LitmusTests[I % Config.LitmusTests.size()];
      LitmusCampaignCell &Cell = Report.LitmusCells[I];
      Cell.Chip = &Chip;
      Cell.Test = &Test;
      Cell.Runs = Config.Runs;
      const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
      litmus::LitmusRunner Runner(
          Chip, campaignLitmusSeed(Config.Seed, Chip, Test));
      const unsigned Distance = 2 * Chip.PatchSizeWords;
      for (unsigned Region = 0; Region != Chip.NumBanks; ++Region)
        Cell.Weak = std::max(
            Cell.Weak,
            Runner.countWeak(Test, Distance,
                             litmus::LitmusRunner::MicroStress::at(
                                 Tuned.Seq, Region * Tuned.PatchWords),
                             Config.Runs));
    });
  }

  // Tab. 5 "a/b" summaries, one per (chip, env) in cell order.
  Report.Summaries.resize(Config.Chips.size() * Config.Envs.size());
  for (size_t CellIdx = 0; CellIdx != Report.Cells.size(); ++CellIdx) {
    const CellResult &R = Report.Cells[CellIdx].Result;
    EnvironmentSummary &S = Report.Summaries[CellIdx / Config.Apps.size()];
    S.AppsWithErrors += R.observed();
    S.AppsEffective += R.effective();
  }
  return Report;
}

void harness::writeCampaignJson(const CampaignReport &Report,
                                std::ostream &OS) {
  const CampaignConfig &Config = Report.Config;
  OS << "{\n"
     << "  \"schema\": \"gpuwmm-campaign-v1\",\n"
     << "  \"seed\": " << Config.Seed << ",\n"
     << "  \"runs\": " << Config.Runs << ",\n";

  OS << "  \"chips\": [";
  for (size_t I = 0; I != Config.Chips.size(); ++I)
    OS << (I ? ", " : "") << '"' << Config.Chips[I]->ShortName << '"';
  OS << "],\n  \"envs\": [";
  for (size_t I = 0; I != Config.Envs.size(); ++I)
    OS << (I ? ", " : "") << '"' << Config.Envs[I].name() << '"';
  OS << "],\n  \"apps\": [";
  for (size_t I = 0; I != Config.Apps.size(); ++I)
    OS << (I ? ", " : "") << '"' << apps::appName(Config.Apps[I]) << '"';
  OS << "],\n";

  // The litmus dimension is optional; an empty selection leaves the
  // report byte-identical to a pre-litmus campaign (pinned goldens).
  if (!Report.LitmusCells.empty()) {
    OS << "  \"litmus\": [\n";
    for (size_t I = 0; I != Report.LitmusCells.size(); ++I) {
      const LitmusCampaignCell &Cell = Report.LitmusCells[I];
      OS << "    {\"chip\": \"" << Cell.Chip->ShortName
         << "\", \"test\": \"" << Cell.Test->Name
         << "\", \"runs\": " << Cell.Runs << ", \"weak\": " << Cell.Weak
         << "}" << (I + 1 == Report.LitmusCells.size() ? "" : ",") << "\n";
    }
    OS << "  ],\n";
  }

  OS << "  \"cells\": [\n";
  for (size_t I = 0; I != Report.Cells.size(); ++I) {
    const CampaignCell &Cell = Report.Cells[I];
    const CellResult &R = Cell.Result;
    OS << "    {\"chip\": \"" << Cell.Chip->ShortName << "\", \"env\": \""
       << Cell.Env.name() << "\", \"app\": \"" << apps::appName(Cell.App)
       << "\", \"runs\": " << R.Runs << ", \"errors\": " << R.Errors
       << ", \"timeouts\": " << R.Timeouts << ", \"effective\": "
       << (R.effective() ? "true" : "false") << "}"
       << (I + 1 == Report.Cells.size() ? "" : ",") << "\n";
  }
  OS << "  ],\n";

  OS << "  \"summaries\": [\n";
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (size_t E = 0; E != Config.Envs.size(); ++E) {
      const EnvironmentSummary &S = Report.summary(C, E);
      const bool Last =
          C + 1 == Config.Chips.size() && E + 1 == Config.Envs.size();
      OS << "    {\"chip\": \"" << Config.Chips[C]->ShortName
         << "\", \"env\": \"" << Config.Envs[E].name()
         << "\", \"apps_effective\": " << S.AppsEffective
         << ", \"apps_with_errors\": " << S.AppsWithErrors << "}"
         << (Last ? "" : ",") << "\n";
    }
  OS << "  ]\n}\n";
}
