//===- harness/Campaign.cpp - Parallel Tab. 5 campaign engine ----------------===//

#include "harness/Campaign.h"

#include "apps/AppCompile.h"
#include "harness/ShardStore.h"
#include "harness/WorkList.h"
#include "model/StreamingChecker.h"
#include "sim/BatchExec.h"

#include <algorithm>
#include <cassert>
#include <csignal>
#include <cstdio>
#include <numeric>
#include <ostream>
#include <set>

/// Build version baked into the campaign JSON header (kept in sync with
/// the CMake project version; the build passes it via compile definition).
#ifndef GPUWMM_VERSION
#define GPUWMM_VERSION "unknown"
#endif

using namespace gpuwmm;
using namespace gpuwmm::harness;

namespace {

/// Canonical position of \p Chip in the Tab. 1 ordering.
uint64_t canonicalChipIndex(const sim::ChipProfile &Chip) {
  size_t Count = 0;
  const sim::ChipProfile *All = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I)
    if (&All[I] == &Chip)
      return I;
  assert(false && "chip not in the canonical table");
  return 0;
}

/// Canonical position of \p Env in the Tab. 5 column ordering.
uint64_t canonicalEnvIndex(const stress::Environment &Env) {
  const auto &All = stress::Environment::all();
  for (size_t I = 0; I != All.size(); ++I)
    if (All[I].Kind == Env.Kind && All[I].Randomise == Env.Randomise)
      return I;
  assert(false && "environment not in the canonical table");
  return 0;
}

/// Canonical position of \p App in the Tab. 4 ordering.
uint64_t canonicalAppIndex(apps::AppKind App) {
  for (size_t I = 0; I != apps::AllAppKinds.size(); ++I)
    if (apps::AllAppKinds[I] == App)
      return I;
  assert(false && "app not in the canonical table");
  return 0;
}

/// Canonical position of \p Test in the litmus catalog.
uint64_t canonicalLitmusIndex(const litmus::Program &Test) {
  const auto &All = litmus::catalog();
  for (size_t I = 0; I != All.size(); ++I)
    if (All[I].Name == Test.Name)
      return I;
  assert(false && "litmus test not in the catalog");
  return 0;
}

/// Executes runs [Begin, End) of one app cell on the calling worker's
/// leased context, mirroring the litmus cells' oracle-stretch pattern
/// (DESIGN.md Sec. 19): every OracleEvery-th run executes scalar with the
/// streaming checker attached, and the unchecked stretches between
/// samples go through the batched engine. Per-run verdicts (and the
/// oracle's sampling grid) are bit-identical to the all-scalar loop for
/// every chunking.
void runCellChunk(apps::AppKind App, const sim::ChipProfile &Chip,
                  const stress::Environment &Env,
                  const stress::TunedStressParams &Tuned, uint64_t CellSeed,
                  unsigned Begin, unsigned End, unsigned OracleEvery,
                  apps::AppVerdict *Verdicts, uint8_t *OracleStatus) {
  sim::ContextLease Ctx;
  thread_local model::StreamingChecker Checker;
  std::vector<uint64_t> Seeds;
  unsigned Run = Begin;
  while (Run != End) {
    if (OracleEvery != 0 && Run % OracleEvery == 0) {
      Checker.begin();
      Ctx.get().requestStreaming(&Checker);
      Verdicts[Run] = apps::runApplicationOnce(
          Ctx.get(), App, Chip, Env, Tuned,
          /*Policy=*/nullptr, Rng::deriveStream(CellSeed, Run));
      Ctx.get().requestStreaming(nullptr);
      OracleStatus[Run] = Checker.finish().AxiomsOk ? 1 : 2;
      ++Run;
      continue;
    }
    unsigned StretchEnd = End;
    if (OracleEvery != 0)
      StretchEnd = std::min<unsigned>(
          End, (Run / OracleEvery + 1) * OracleEvery);
    Seeds.resize(StretchEnd - Run);
    for (unsigned I = Run; I != StretchEnd; ++I)
      Seeds[I - Run] = Rng::deriveStream(CellSeed, I);
    apps::runApplicationBatch(Ctx.get(), App, Chip, Env, Tuned,
                              /*Policy=*/nullptr, Seeds.data(),
                              Verdicts + Run, Seeds.size());
    Run = StretchEnd;
  }
}

} // namespace

CampaignConfig CampaignConfig::full() {
  CampaignConfig Config;
  size_t Count = 0;
  const sim::ChipProfile *All = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I)
    Config.Chips.push_back(&All[I]);
  for (const stress::Environment &Env : stress::Environment::all())
    Config.Envs.push_back(Env);
  for (apps::AppKind App : apps::AllAppKinds)
    Config.Apps.push_back(App);
  return Config;
}

uint64_t harness::campaignCellSeed(uint64_t Seed,
                                   const sim::ChipProfile &Chip,
                                   const stress::Environment &Env,
                                   apps::AppKind App) {
  // Pack the canonical identity into one stream index. The factors are the
  // full table sizes, not the selection sizes, so a sub-grid draws the
  // same streams as the full grid.
  const uint64_t NumEnvs = stress::Environment::all().size();
  const uint64_t NumApps = apps::AllAppKinds.size();
  const uint64_t Packed =
      (canonicalChipIndex(Chip) * NumEnvs + canonicalEnvIndex(Env)) *
          NumApps +
      canonicalAppIndex(App);
  return Rng::deriveStream(Seed, Packed);
}

uint64_t harness::campaignLitmusSeed(uint64_t Seed,
                                     const sim::ChipProfile &Chip,
                                     const litmus::Program &Test) {
  // A stream space disjoint from the app cells' (whose packed indices are
  // bounded by the full grid size, far below 1 << 20).
  const uint64_t Packed =
      (uint64_t{1} << 20) +
      canonicalChipIndex(Chip) * litmus::catalog().size() +
      canonicalLitmusIndex(Test);
  return Rng::deriveStream(Seed, Packed);
}

CampaignReport harness::runCampaign(const CampaignConfig &Config,
                                    ThreadPool *Pool) {
  assert(!Config.Chips.empty() && !Config.Envs.empty() &&
         !Config.Apps.empty() && "empty campaign grid");
  CampaignReport Report;
  Report.Config = Config;

  // Lay out the cells (and their tuned parameters) up front, then flatten
  // (cell, run) into one index space: with only tens of cells but
  // hundreds of runs each, cell-level distribution alone would starve
  // workers at the tail.
  Report.Cells.reserve(Config.Chips.size() * Config.Envs.size() *
                       Config.Apps.size());
  std::vector<stress::TunedStressParams> Tuned;
  Tuned.reserve(Config.Chips.size());
  for (const sim::ChipProfile *Chip : Config.Chips)
    Tuned.push_back(stress::TunedStressParams::paperDefaults(*Chip));
  std::vector<uint64_t> CellSeeds;
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (const stress::Environment &Env : Config.Envs)
      for (apps::AppKind App : Config.Apps) {
        CampaignCell Cell;
        Cell.Chip = Config.Chips[C];
        Cell.Env = Env;
        Cell.App = App;
        Cell.Result.Runs = Config.Runs;
        Report.Cells.push_back(Cell);
        CellSeeds.push_back(
            campaignCellSeed(Config.Seed, *Config.Chips[C], Env, App));
      }

  const size_t CellsPerChip = Config.Envs.size() * Config.Apps.size();
  std::vector<apps::AppVerdict> Verdicts(Report.Cells.size() * Config.Runs);
  // Per-run oracle status (0 = unchecked, 1 = axioms held, 2 = violation),
  // filled only when the oracle samples runs.
  std::vector<uint8_t> OracleStatus(
      Config.OracleEvery ? Verdicts.size() : 0, 0);
  // Distribute chunks of the flattened (cell, run) space: each work unit
  // is up to one batch width of one cell's runs. Checked runs stream
  // their memory events through the incremental oracle as they execute:
  // no trace is retained, so --oracle=all costs frontier-bounded memory.
  // The oracle observes only: verdicts (and thus the report's counts)
  // are identical with it on or off. One recycled execution engine and
  // checker per worker thread (DESIGN.md Sec. 12).
  const unsigned W = sim::defaultBatchWidth();
  const size_t ChunksPerCell = (Config.Runs + W - 1) / W;
  parallelFor(Pool, Report.Cells.size() * ChunksPerCell, [&](size_t I) {
    const size_t CellIdx = I / ChunksPerCell;
    const unsigned Begin = static_cast<unsigned>(I % ChunksPerCell) * W;
    const CampaignCell &Cell = Report.Cells[CellIdx];
    runCellChunk(Cell.App, *Cell.Chip, Cell.Env,
                 Tuned[CellIdx / CellsPerChip], CellSeeds[CellIdx], Begin,
                 std::min(Begin + W, Config.Runs), Config.OracleEvery,
                 Verdicts.data() + CellIdx * Config.Runs,
                 Config.OracleEvery
                     ? OracleStatus.data() + CellIdx * Config.Runs
                     : nullptr);
  });

  for (size_t CellIdx = 0; CellIdx != Report.Cells.size(); ++CellIdx) {
    CampaignCell &Cell = Report.Cells[CellIdx];
    CellResult &R = Cell.Result;
    for (unsigned Run = 0; Run != Config.Runs; ++Run) {
      const apps::AppVerdict V = Verdicts[CellIdx * Config.Runs + Run];
      if (apps::isErroneous(V))
        ++R.Errors;
      if (V == apps::AppVerdict::Timeout)
        ++R.Timeouts;
      if (Config.OracleEvery) {
        const uint8_t S = OracleStatus[CellIdx * Config.Runs + Run];
        Cell.OracleChecked += S != 0;
        Cell.OracleViolations += S == 2;
      }
    }
  }

  // Litmus cells: for each (chip, test), the `gpuwmm litmus --stress`
  // scan — Runs executions per per-bank stress location, best location's
  // weak count — at the chip's default distance. Each cell owns a
  // canonical-identity seed, so results are job-count independent and a
  // sub-selection reproduces the full selection.
  if (!Config.LitmusTests.empty()) {
    Report.LitmusCells.resize(Config.Chips.size() *
                              Config.LitmusTests.size());
    parallelFor(Pool, Report.LitmusCells.size(), [&](size_t I) {
      Report.LitmusCells[I] = runCampaignLitmusCell(
          Config, *Config.Chips[I / Config.LitmusTests.size()],
          *Config.LitmusTests[I % Config.LitmusTests.size()]);
    });
  }

  // Tab. 5 "a/b" summaries, one per (chip, env) in cell order.
  Report.Summaries.resize(Config.Chips.size() * Config.Envs.size());
  for (size_t CellIdx = 0; CellIdx != Report.Cells.size(); ++CellIdx) {
    const CellResult &R = Report.Cells[CellIdx].Result;
    EnvironmentSummary &S = Report.Summaries[CellIdx / Config.Apps.size()];
    S.AppsWithErrors += R.observed();
    S.AppsEffective += R.effective();
  }
  return Report;
}

CampaignCell harness::runCampaignAppCell(const CampaignConfig &Config,
                                         const sim::ChipProfile &Chip,
                                         const stress::Environment &Env,
                                         apps::AppKind App,
                                         ThreadPool *Pool) {
  CampaignCell Cell;
  Cell.Chip = &Chip;
  Cell.Env = Env;
  Cell.App = App;
  Cell.Result.Runs = Config.Runs;
  const uint64_t CellSeed = campaignCellSeed(Config.Seed, Chip, Env, App);
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  std::vector<apps::AppVerdict> Verdicts(Config.Runs);
  std::vector<uint8_t> OracleStatus(Config.OracleEvery ? Config.Runs : 0,
                                    0);
  // Same per-run math as runCampaign's chunked loop: run R executes at
  // deriveStream(cell seed, R), every OracleEvery-th run streams through
  // the incremental checker, and the stretches between samples take the
  // batched engine — so this cell's counts are bit-identical to the
  // monolithic campaign's.
  const unsigned W = sim::defaultBatchWidth();
  parallelFor(Pool, (Config.Runs + W - 1) / W, [&](size_t C) {
    const unsigned Begin = static_cast<unsigned>(C) * W;
    runCellChunk(App, Chip, Env, Tuned, CellSeed, Begin,
                 std::min(Begin + W, Config.Runs), Config.OracleEvery,
                 Verdicts.data(),
                 Config.OracleEvery ? OracleStatus.data() : nullptr);
  });
  for (unsigned Run = 0; Run != Config.Runs; ++Run) {
    const apps::AppVerdict V = Verdicts[Run];
    if (apps::isErroneous(V))
      ++Cell.Result.Errors;
    if (V == apps::AppVerdict::Timeout)
      ++Cell.Result.Timeouts;
    if (Config.OracleEvery) {
      Cell.OracleChecked += OracleStatus[Run] != 0;
      Cell.OracleViolations += OracleStatus[Run] == 2;
    }
  }
  return Cell;
}

LitmusCampaignCell
harness::runCampaignLitmusCell(const CampaignConfig &Config,
                               const sim::ChipProfile &Chip,
                               const litmus::Program &Test) {
  // The `gpuwmm litmus --stress` scan: Runs executions per per-bank
  // stress location, best location's weak count, at the chip's default
  // distance and the cell's canonical-identity seed.
  LitmusCampaignCell Cell;
  Cell.Chip = &Chip;
  Cell.Test = &Test;
  Cell.Runs = Config.Runs;
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  litmus::LitmusRunner Runner(Chip,
                              campaignLitmusSeed(Config.Seed, Chip, Test));
  const unsigned Distance = 2 * Chip.PatchSizeWords;
  model::StreamingChecker Checker;
  for (unsigned Region = 0; Region != Chip.NumBanks; ++Region) {
    const auto Stress = litmus::LitmusRunner::MicroStress::at(
        Tuned.Seq, Region * Tuned.PatchWords);
    unsigned Weak = 0;
    for (unsigned Run = 0; Run != Config.Runs;) {
      // Checked runs stream through the incremental oracle: the
      // axioms must hold and the checker's SC-vs-weak classification
      // must agree with the operational outcome. The oracle observes
      // only, so the weak counts are identical with it on or off.
      const bool Check = Config.OracleEvery != 0 &&
                         Run % Config.OracleEvery == 0;
      if (Check) {
        litmus::LitmusRunner::RunOpts Opts;
        Checker.begin();
        Opts.Sink = &Checker;
        const bool Forbidden = Runner.runOnce(Test, Distance, Stress, Opts);
        Weak += Forbidden;
        const model::StreamVerdict &R = Checker.finish();
        ++Cell.OracleChecked;
        if (!R.AxiomsOk || R.weak() != Forbidden)
          ++Cell.OracleViolations;
        ++Run;
        continue;
      }
      // The unchecked stretch up to the next sampled run goes through the
      // batched engine in one call. The runner's seed stream advances one
      // fork per execution either way, so the per-run verdicts — and thus
      // the cell's weak count — are bit-identical to the scalar loop.
      const unsigned End =
          Config.OracleEvery == 0
              ? Config.Runs
              : std::min(Config.Runs,
                         (Run / Config.OracleEvery + 1) * Config.OracleEvery);
      Weak += Runner.countWeak(Test, Distance, Stress, End - Run, {});
      Run = End;
    }
    Cell.Weak = std::max(Cell.Weak, Weak);
  }
  return Cell;
}

bool harness::runCampaignFabric(const CampaignConfig &Config,
                                const FabricOptions &Opts, ThreadPool *Pool,
                                FabricOutcome &Out, std::string *Err) {
  Out = FabricOutcome();
  assert(!Config.Chips.empty() && !Config.Envs.empty() &&
         !Config.Apps.empty() && "empty campaign grid");
  const std::vector<CampaignWorkItem> Work = buildWorkList(Config);

  // Cell identity is the store's dedupe key, so a selection that aliases
  // cells (e.g. --chips=titan,titan) would collapse in the merge and can
  // never reproduce the monolithic report — refuse it up front.
  {
    std::set<std::string> Keys;
    for (const CampaignWorkItem &Item : Work)
      if (!Keys.insert(workItemKey(Config, Item)).second) {
        if (Err)
          *Err = "campaign selection repeats cell '" +
                 workItemKey(Config, Item) +
                 "'; sharded campaigns need a duplicate-free grid";
        return false;
      }
  }

  std::optional<ShardStore> Store = ShardStore::open(Opts.Dir, Config, Err);
  if (!Store)
    return false;

  std::set<std::string> Durable;
  if (Opts.Resume) {
    // Torn tails are tolerated here by construction: the torn record
    // never parses, so its cell is absent from Durable and re-runs.
    LoadedShards Shards;
    if (!loadCampaignShards(Opts.Dir, Shards, Err))
      return false;
    Out.Warnings = Shards.Warnings;
    for (const ShardRecord &R : Shards.Records)
      Durable.insert(R.key());
  }

  std::vector<size_t> All;
  const std::vector<size_t> *Selection = Opts.Selection;
  if (!Selection) {
    All.resize(Work.size());
    std::iota(All.begin(), All.end(), size_t{0});
    Selection = &All;
  }

  unsigned Appended = 0;
  for (const size_t Idx : *Selection) {
    assert(Idx < Work.size() && "cell index outside the work list");
    const CampaignWorkItem &Item = Work[Idx];
    const std::string Key = workItemKey(Config, Item);
    if (Durable.count(Key)) {
      ++Out.Skipped;
      continue;
    }
    ShardRecord Record;
    Record.Chip = Config.Chips[Item.ChipIdx]->ShortName;
    Record.Seed = workItemSeed(Config, Item);
    Record.Runs = Config.Runs;
    if (Item.ItemKind == CampaignWorkItem::Kind::Litmus) {
      const LitmusCampaignCell Cell = runCampaignLitmusCell(
          Config, *Config.Chips[Item.ChipIdx],
          *Config.LitmusTests[Item.TestIdx]);
      Record.IsLitmus = true;
      Record.Test = Cell.Test->Name;
      Record.Weak = Cell.Weak;
      Record.OracleChecked = Cell.OracleChecked;
      Record.OracleViolations = Cell.OracleViolations;
    } else {
      const CampaignCell Cell = runCampaignAppCell(
          Config, *Config.Chips[Item.ChipIdx], Config.Envs[Item.EnvIdx],
          Config.Apps[Item.AppIdx], Pool);
      Record.Env = Cell.Env.name();
      Record.App = apps::appName(Cell.App);
      Record.Errors = Cell.Result.Errors;
      Record.Timeouts = Cell.Result.Timeouts;
      Record.OracleChecked = Cell.OracleChecked;
      Record.OracleViolations = Cell.OracleViolations;
    }
    if (!Store->append(Record, Err))
      return false;
    ++Out.Completed;
    Out.OracleViolations += Record.OracleViolations;
    // Crash-injection hook: die the hardest way possible (SIGKILL — no
    // destructors, no flushing) right after the Nth durable append, so
    // the tests prove the store's records survive and --resume completes
    // the grid byte-identically.
    if (Opts.CrashAfterAppends && ++Appended == Opts.CrashAfterAppends) {
      std::fprintf(stderr,
                   "campaign: crash hook firing after %u record(s)\n",
                   Appended);
      ::raise(SIGKILL);
    }
  }
  Out.ShardPath = Store->shardPath();
  return true;
}

void harness::writeCampaignJson(const CampaignReport &Report,
                                std::ostream &OS) {
  const CampaignConfig &Config = Report.Config;
  // The header carries only build-stable metadata (schema + tool name and
  // version) — never wall-clock or host facts, so the report stays
  // byte-identical across machines and job counts for one seed.
  OS << "{\n"
     << "  \"schema\": \"gpuwmm-campaign-v2\",\n"
     << "  \"schema_version\": 2,\n"
     << "  \"tool\": {\"name\": \"gpuwmm\", \"version\": \"" GPUWMM_VERSION
        "\"},\n"
     << "  \"seed\": " << Config.Seed << ",\n"
     << "  \"runs\": " << Config.Runs << ",\n";
  if (Config.OracleEvery)
    OS << "  \"oracle_every\": " << Config.OracleEvery << ",\n";

  OS << "  \"chips\": [";
  for (size_t I = 0; I != Config.Chips.size(); ++I)
    OS << (I ? ", " : "") << '"' << Config.Chips[I]->ShortName << '"';
  OS << "],\n  \"envs\": [";
  for (size_t I = 0; I != Config.Envs.size(); ++I)
    OS << (I ? ", " : "") << '"' << Config.Envs[I].name() << '"';
  OS << "],\n  \"apps\": [";
  for (size_t I = 0; I != Config.Apps.size(); ++I)
    OS << (I ? ", " : "") << '"' << apps::appName(Config.Apps[I]) << '"';
  OS << "],\n";

  // The litmus dimension is optional; an empty selection leaves the
  // report byte-identical to a pre-litmus campaign (pinned goldens).
  if (!Report.LitmusCells.empty()) {
    OS << "  \"litmus\": [\n";
    for (size_t I = 0; I != Report.LitmusCells.size(); ++I) {
      const LitmusCampaignCell &Cell = Report.LitmusCells[I];
      OS << "    {\"chip\": \"" << Cell.Chip->ShortName
         << "\", \"test\": \"" << Cell.Test->Name
         << "\", \"runs\": " << Cell.Runs << ", \"weak\": " << Cell.Weak;
      if (Config.OracleEvery)
        OS << ", \"oracle_checked\": " << Cell.OracleChecked
           << ", \"oracle_violations\": " << Cell.OracleViolations;
      OS << "}" << (I + 1 == Report.LitmusCells.size() ? "" : ",") << "\n";
    }
    OS << "  ],\n";
  }

  OS << "  \"cells\": [\n";
  for (size_t I = 0; I != Report.Cells.size(); ++I) {
    const CampaignCell &Cell = Report.Cells[I];
    const CellResult &R = Cell.Result;
    OS << "    {\"chip\": \"" << Cell.Chip->ShortName << "\", \"env\": \""
       << Cell.Env.name() << "\", \"app\": \"" << apps::appName(Cell.App)
       << "\", \"runs\": " << R.Runs << ", \"errors\": " << R.Errors
       << ", \"timeouts\": " << R.Timeouts << ", \"effective\": "
       << (R.effective() ? "true" : "false")
       // Which engine the cell's unchecked runs took (additive v2 key;
       // derived, not stored — dispatch is a pure function of the app and
       // the process-wide mode).
       << ", \"engine\": \""
       << (apps::appLowerable(Cell.App) &&
               sim::engineMode() != sim::EngineMode::Scalar
           ? "batched"
           : "scalar")
       << '"';
    if (Config.OracleEvery)
      OS << ", \"oracle_checked\": " << Cell.OracleChecked
         << ", \"oracle_violations\": " << Cell.OracleViolations;
    OS << "}" << (I + 1 == Report.Cells.size() ? "" : ",") << "\n";
  }
  OS << "  ],\n";

  OS << "  \"summaries\": [\n";
  for (size_t C = 0; C != Config.Chips.size(); ++C)
    for (size_t E = 0; E != Config.Envs.size(); ++E) {
      const EnvironmentSummary &S = Report.summary(C, E);
      const bool Last =
          C + 1 == Config.Chips.size() && E + 1 == Config.Envs.size();
      OS << "    {\"chip\": \"" << Config.Chips[C]->ShortName
         << "\", \"env\": \"" << Config.Envs[E].name()
         << "\", \"apps_effective\": " << S.AppsEffective
         << ", \"apps_with_errors\": " << S.AppsWithErrors << "}"
         << (Last ? "" : ",") << "\n";
    }
  OS << "  ]\n}\n";
}
