//===- harness/ShardStore.cpp - Durable per-cell result store ----------------===//

#include "harness/ShardStore.h"

#include "support/Json.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <functional>

#include <sys/stat.h>

/// Build version baked into the manifest (kept in sync with the CMake
/// project version; the build passes it via compile definition). Resuming
/// or striping a campaign across builds of different versions is refused —
/// the record schema and simulator behaviour are only pinned per version.
#ifndef GPUWMM_VERSION
#define GPUWMM_VERSION "unknown"
#endif

using namespace gpuwmm;
using namespace gpuwmm::harness;

std::string ShardRecord::key() const {
  if (IsLitmus)
    return "litmus/" + Chip + "/" + Test;
  return "app/" + Chip + "/" + Env + "/" + App;
}

std::string ShardRecord::toJson() const {
  std::string S = "{\"kind\": \"";
  S += IsLitmus ? "litmus" : "app";
  S += "\", \"chip\": \"" + jsonEscape(Chip) + "\"";
  if (IsLitmus)
    S += ", \"test\": \"" + jsonEscape(Test) + "\"";
  else
    S += ", \"env\": \"" + jsonEscape(Env) + "\", \"app\": \"" +
         jsonEscape(App) + "\"";
  S += ", \"seed\": " + std::to_string(Seed);
  S += ", \"runs\": " + std::to_string(Runs);
  if (IsLitmus)
    S += ", \"weak\": " + std::to_string(Weak);
  else
    S += ", \"errors\": " + std::to_string(Errors) +
         ", \"timeouts\": " + std::to_string(Timeouts);
  S += ", \"oracle_checked\": " + std::to_string(OracleChecked);
  S += ", \"oracle_violations\": " + std::to_string(OracleViolations);
  S += "}";
  return S;
}

namespace {

/// Fetches a required member of \p Obj, failing with a field-specific
/// message; \p WantString selects string vs number kind.
const JsonValue *requireField(const JsonValue &Obj, const char *Key,
                              bool WantString, std::string *Err) {
  const JsonValue *V = Obj.find(Key);
  if (!V || (WantString ? V->kind() != JsonValue::Kind::String
                        : V->kind() != JsonValue::Kind::Number)) {
    if (Err)
      *Err = std::string("shard record is missing or mistypes '") + Key +
             "'";
    return nullptr;
  }
  return V;
}

bool getUnsigned(const JsonValue &Obj, const char *Key, unsigned &Out,
                 std::string *Err) {
  const JsonValue *V = requireField(Obj, Key, /*WantString=*/false, Err);
  if (!V)
    return false;
  // Counts are plain non-negative integers; a sign, fraction or exponent
  // (or a value wider than unsigned) marks a record we did not write.
  const std::string &Text = V->numberText();
  if (Text.find_first_not_of("0123456789") != std::string::npos ||
      V->asUInt64() > std::numeric_limits<unsigned>::max()) {
    if (Err)
      *Err = std::string("shard record field '") + Key +
             "' is not an unsigned integer";
    return false;
  }
  Out = static_cast<unsigned>(V->asUInt64());
  return true;
}

} // namespace

std::optional<ShardRecord> ShardRecord::fromJson(std::string_view Payload,
                                                 std::string *Err) {
  const std::optional<JsonValue> Doc = parseJson(Payload, Err);
  if (!Doc)
    return std::nullopt;
  if (!Doc->isObject()) {
    if (Err)
      *Err = "shard record is not a JSON object";
    return std::nullopt;
  }
  const JsonValue *Kind = requireField(*Doc, "kind", true, Err);
  if (!Kind)
    return std::nullopt;
  ShardRecord R;
  if (Kind->asString() == "litmus")
    R.IsLitmus = true;
  else if (Kind->asString() != "app") {
    if (Err)
      *Err = "shard record has unknown kind '" + Kind->asString() + "'";
    return std::nullopt;
  }
  const JsonValue *Chip = requireField(*Doc, "chip", true, Err);
  if (!Chip)
    return std::nullopt;
  R.Chip = Chip->asString();
  if (R.IsLitmus) {
    const JsonValue *Test = requireField(*Doc, "test", true, Err);
    if (!Test || !getUnsigned(*Doc, "weak", R.Weak, Err))
      return std::nullopt;
    R.Test = Test->asString();
  } else {
    const JsonValue *Env = requireField(*Doc, "env", true, Err);
    const JsonValue *App = Env ? requireField(*Doc, "app", true, Err)
                               : nullptr;
    if (!App || !getUnsigned(*Doc, "errors", R.Errors, Err) ||
        !getUnsigned(*Doc, "timeouts", R.Timeouts, Err))
      return std::nullopt;
    R.Env = Env->asString();
    R.App = App->asString();
  }
  const JsonValue *Seed = requireField(*Doc, "seed", false, Err);
  if (!Seed || !getUnsigned(*Doc, "runs", R.Runs, Err) ||
      !getUnsigned(*Doc, "oracle_checked", R.OracleChecked, Err) ||
      !getUnsigned(*Doc, "oracle_violations", R.OracleViolations, Err))
    return std::nullopt;
  R.Seed = Seed->asUInt64();
  return R;
}

std::string harness::campaignManifestJson(const CampaignConfig &Config) {
  std::string S;
  S += "{\n";
  S += "  \"schema\": \"gpuwmm-campaign-manifest-v1\",\n";
  S += "  \"report_schema\": \"gpuwmm-campaign-v2\",\n";
  S += "  \"tool\": {\"name\": \"gpuwmm\", \"version\": \"" GPUWMM_VERSION
       "\"},\n";
  S += "  \"seed\": " + std::to_string(Config.Seed) + ",\n";
  S += "  \"runs\": " + std::to_string(Config.Runs) + ",\n";
  S += "  \"oracle_every\": " + std::to_string(Config.OracleEvery) + ",\n";
  const auto NameList = [&S](const char *Key,
                             const std::vector<std::string> &Names) {
    S += "  \"";
    S += Key;
    S += "\": [";
    for (size_t I = 0; I != Names.size(); ++I) {
      S += I ? ", " : "";
      // Built without operator+ to dodge GCC 12's -Wrestrict false positive.
      S += "\"";
      S += jsonEscape(Names[I]);
      S += "\"";
    }
    S += "],\n";
  };
  std::vector<std::string> Names;
  for (const sim::ChipProfile *Chip : Config.Chips)
    Names.push_back(Chip->ShortName);
  NameList("chips", Names);
  Names.clear();
  for (const stress::Environment &Env : Config.Envs)
    Names.push_back(Env.name());
  NameList("envs", Names);
  Names.clear();
  for (apps::AppKind App : Config.Apps)
    Names.push_back(apps::appName(App));
  NameList("apps", Names);
  Names.clear();
  for (const litmus::Program *Test : Config.LitmusTests)
    Names.push_back(Test->Name);
  NameList("litmus", Names);
  const size_t Cells =
      Config.Chips.size() * Config.Envs.size() * Config.Apps.size() +
      Config.Chips.size() * Config.LitmusTests.size();
  S += "  \"cells\": " + std::to_string(Cells) + "\n";
  S += "}\n";
  return S;
}

bool harness::parseCampaignManifest(const std::string &Text,
                                    CampaignConfig &Config,
                                    std::string *Err) {
  const std::optional<JsonValue> Doc = parseJson(Text, Err);
  if (!Doc)
    return false;
  const JsonValue *Schema = Doc->find("schema");
  if (!Doc->isObject() || !Schema ||
      Schema->kind() != JsonValue::Kind::String ||
      Schema->asString() != "gpuwmm-campaign-manifest-v1") {
    if (Err)
      *Err = "not a gpuwmm campaign manifest";
    return false;
  }
  const JsonValue *Seed = Doc->find("seed");
  const JsonValue *Runs = Doc->find("runs");
  const JsonValue *Oracle = Doc->find("oracle_every");
  if (!Seed || !Runs || !Oracle) {
    if (Err)
      *Err = "manifest is missing seed/runs/oracle_every";
    return false;
  }
  Config = CampaignConfig();
  Config.Chips.clear();
  Config.Envs.clear();
  Config.Apps.clear();
  Config.Seed = Seed->asUInt64();
  Config.Runs = static_cast<unsigned>(Runs->asUInt64());
  Config.OracleEvery = static_cast<unsigned>(Oracle->asUInt64());

  const auto ForEachName =
      [&](const char *Key,
          const std::function<bool(const std::string &)> &Add) -> bool {
    const JsonValue *List = Doc->find(Key);
    if (!List || !List->isArray()) {
      if (Err)
        *Err = std::string("manifest is missing the '") + Key + "' list";
      return false;
    }
    for (const JsonValue &V : List->items()) {
      if (V.kind() != JsonValue::Kind::String || !Add(V.asString())) {
        if (Err && Err->empty())
          *Err = std::string("manifest names an unknown ") + Key +
                 " entry" +
                 (V.kind() == JsonValue::Kind::String
                      ? " '" + V.asString() + "'"
                      : "");
        return false;
      }
    }
    return true;
  };

  if (!ForEachName("chips", [&](const std::string &Name) {
        const sim::ChipProfile *Chip = sim::ChipProfile::lookup(Name);
        if (Chip)
          Config.Chips.push_back(Chip);
        return Chip != nullptr;
      }))
    return false;
  if (!ForEachName("envs", [&](const std::string &Name) {
        const auto Env = stress::Environment::parse(Name);
        if (Env)
          Config.Envs.push_back(*Env);
        return Env.has_value();
      }))
    return false;
  if (!ForEachName("apps", [&](const std::string &Name) {
        const auto App = apps::parseAppName(Name);
        if (App)
          Config.Apps.push_back(*App);
        return App.has_value();
      }))
    return false;
  if (!ForEachName("litmus", [&](const std::string &Name) {
        const litmus::Program *Test = litmus::findCatalogProgram(Name);
        if (Test)
          Config.LitmusTests.push_back(Test);
        return Test != nullptr;
      }))
    return false;
  if (Config.Chips.empty() || Config.Envs.empty() || Config.Apps.empty()) {
    if (Err)
      *Err = "manifest describes an empty campaign grid";
    return false;
  }
  return true;
}

bool harness::loadCampaignManifest(const std::string &Dir,
                                   CampaignConfig &Config,
                                   std::string *Err) {
  std::string Text;
  if (!readFile(Dir + "/manifest.json", Text, Err))
    return false;
  if (!parseCampaignManifest(Text, Config, Err)) {
    if (Err)
      *Err = "'" + Dir + "/manifest.json': " + *Err;
    return false;
  }
  return true;
}

std::optional<ShardStore> ShardStore::open(const std::string &Dir,
                                           const CampaignConfig &Config,
                                           std::string *Err) {
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (Err)
      *Err = "cannot create campaign directory '" + Dir +
             "': " + std::strerror(errno);
    return std::nullopt;
  }
  const std::string Manifest = campaignManifestJson(Config);
  const std::string Path = Dir + "/manifest.json";
  std::string Existing;
  std::string ReadErr;
  if (readFile(Path, Existing, &ReadErr)) {
    // Joining an existing campaign: the directory's identity must match
    // this worker's config exactly, or shards from different campaigns
    // (or tool versions) would silently mix.
    if (Existing != Manifest) {
      if (Err)
        *Err = "'" + Path + "' describes a different campaign (grid, "
               "seed, runs, oracle or tool version differ); use a fresh "
               "--out-dir or matching flags";
      return std::nullopt;
    }
  } else if (!atomicWriteFile(Path, Manifest, Err)) {
    return std::nullopt;
  }
  ShardStore Store;
  Store.Directory = Dir;
  return Store;
}

bool ShardStore::append(const ShardRecord &Record, std::string *Err) {
  if (!Log.isOpen()) {
    // Claim the lowest free shard index; O_EXCL arbitrates races between
    // workers sharing the directory.
    for (unsigned I = 0; I != 10000; ++I) {
      char Name[32];
      std::snprintf(Name, sizeof(Name), "shard-%04u.jsonl", I);
      bool Exists = false;
      std::string ClaimErr;
      auto Claimed =
          RecordLog::createExclusive(Directory + "/" + Name, &ClaimErr,
                                     &Exists);
      if (Claimed) {
        Log = std::move(*Claimed);
        break;
      }
      if (!Exists) {
        if (Err)
          *Err = ClaimErr;
        return false;
      }
    }
    if (!Log.isOpen()) {
      if (Err)
        *Err = "no free shard slot in '" + Directory + "'";
      return false;
    }
  }
  return Log.append(Record.toJson(), Err);
}

bool harness::loadCampaignShards(const std::string &Dir, LoadedShards &Out,
                                 std::string *Err) {
  Out = LoadedShards();
  std::vector<std::string> Shards;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec)) {
    const std::string Name = Entry.path().filename().string();
    if (Name.rfind("shard-", 0) == 0 &&
        Name.size() > 6 + 6 &&
        Name.compare(Name.size() - 6, 6, ".jsonl") == 0)
      Shards.push_back(Entry.path().string());
  }
  if (Ec) {
    if (Err)
      *Err = "cannot list '" + Dir + "': " + Ec.message();
    return false;
  }
  std::sort(Shards.begin(), Shards.end());

  for (const std::string &Shard : Shards) {
    ++Out.ShardFiles;
    std::string Text;
    if (!readFile(Shard, Text, Err))
      return false;
    const FramedRecords Framed = parseFramedRecords(Text);
    if (Framed.TornTail) {
      ++Out.TornShards;
      Out.Warnings.push_back(
          "'" + Shard + "': torn tail record truncated at byte " +
          std::to_string(Framed.ValidBytes) +
          " (crash mid-append; the cell will be re-run on --resume)");
    }
    for (const std::string &Payload : Framed.Payloads) {
      std::string ParseErr;
      const std::optional<ShardRecord> R =
          ShardRecord::fromJson(Payload, &ParseErr);
      if (!R) {
        if (Err)
          *Err = "'" + Shard + "': " + ParseErr;
        return false;
      }
      const std::string Key = R->key();
      const auto [It, Inserted] =
          Out.ByKey.emplace(Key, Out.Records.size());
      if (Inserted) {
        Out.Records.push_back(*R);
        continue;
      }
      // Cells are pure functions of their canonical seed, so duplicate
      // records must agree; a conflict means the store mixes campaigns
      // and no merge of it can be trusted.
      if (!(Out.Records[It->second] == *R)) {
        if (Err)
          *Err = "'" + Shard + "': conflicting duplicate record for cell "
                 "'" + Key + "' (the store mixes incompatible runs)";
        return false;
      }
      ++Out.Duplicates;
    }
  }
  return true;
}
