//===- harness/Merge.cpp - Shard-to-report merge -----------------------------===//

#include "harness/Merge.h"

#include "harness/ShardStore.h"
#include "harness/WorkList.h"

#include <set>

using namespace gpuwmm;
using namespace gpuwmm::harness;

bool harness::mergeCampaignShards(const std::string &Dir,
                                  CampaignReport &Report, MergeStats &Stats,
                                  std::string *Err) {
  Stats = MergeStats();
  CampaignConfig Config;
  if (!loadCampaignManifest(Dir, Config, Err))
    return false;
  LoadedShards Shards;
  if (!loadCampaignShards(Dir, Shards, Err))
    return false;
  Stats.ShardFiles = Shards.ShardFiles;
  Stats.Duplicates = Shards.Duplicates;
  Stats.TornShards = Shards.TornShards;
  Stats.Warnings = Shards.Warnings;

  const std::vector<CampaignWorkItem> Work = buildWorkList(Config);
  Report = CampaignReport();
  Report.Config = Config;
  std::set<std::string> Expected;

  for (const CampaignWorkItem &Item : Work) {
    const std::string Key = workItemKey(Config, Item);
    Expected.insert(Key);
    const auto It = Shards.ByKey.find(Key);
    if (It == Shards.ByKey.end()) {
      Stats.MissingCells.push_back(Key);
      continue;
    }
    const ShardRecord &R = Shards.Records[It->second];
    // A record that contradicts the manifest's run count or the cell's
    // canonical derived seed did not come from this campaign's config —
    // refuse rather than merge unrelated numbers.
    if (R.Runs != Config.Runs || R.Seed != workItemSeed(Config, Item)) {
      if (Err)
        *Err = "record for cell '" + Key +
               "' contradicts the manifest (runs or derived seed differ)";
      return false;
    }
    if (Item.ItemKind == CampaignWorkItem::Kind::Litmus) {
      LitmusCampaignCell Cell;
      Cell.Chip = Config.Chips[Item.ChipIdx];
      Cell.Test = Config.LitmusTests[Item.TestIdx];
      Cell.Runs = R.Runs;
      Cell.Weak = R.Weak;
      Cell.OracleChecked = R.OracleChecked;
      Cell.OracleViolations = R.OracleViolations;
      Report.LitmusCells.push_back(Cell);
    } else {
      CampaignCell Cell;
      Cell.Chip = Config.Chips[Item.ChipIdx];
      Cell.Env = Config.Envs[Item.EnvIdx];
      Cell.App = Config.Apps[Item.AppIdx];
      Cell.Result.Runs = R.Runs;
      Cell.Result.Errors = R.Errors;
      Cell.Result.Timeouts = R.Timeouts;
      Cell.OracleChecked = R.OracleChecked;
      Cell.OracleViolations = R.OracleViolations;
      Report.Cells.push_back(Cell);
    }
  }

  // A record for a cell outside the manifest's grid is corruption, not
  // surplus: the manifest check on open should make this impossible.
  for (const ShardRecord &R : Shards.Records)
    if (!Expected.count(R.key())) {
      if (Err)
        *Err = "record for cell '" + R.key() +
               "' is outside the manifest's grid";
      return false;
    }

  if (!Stats.MissingCells.empty()) {
    if (Err) {
      *Err = std::to_string(Stats.MissingCells.size()) + " of " +
             std::to_string(Work.size()) +
             " cells have no durable record (first missing: '" +
             Stats.MissingCells.front() +
             "'); finish the campaign with --resume";
    }
    return false;
  }

  // Tab. 5 "a/b" summaries, recomputed from the cells exactly as
  // runCampaign computes them.
  Report.Summaries.resize(Config.Chips.size() * Config.Envs.size());
  for (size_t CellIdx = 0; CellIdx != Report.Cells.size(); ++CellIdx) {
    const CellResult &R = Report.Cells[CellIdx].Result;
    EnvironmentSummary &S = Report.Summaries[CellIdx / Config.Apps.size()];
    S.AppsWithErrors += R.observed();
    S.AppsEffective += R.effective();
  }
  Stats.CellsMerged = Report.Cells.size() + Report.LitmusCells.size();
  return true;
}
