//===- harness/CostBenchmark.cpp - Sec. 6 fence-cost study --------------------===//

#include "harness/CostBenchmark.h"

using namespace gpuwmm;
using namespace gpuwmm::harness;

CostMeasurement harness::measureCost(apps::AppKind App,
                                     const sim::ChipProfile &Chip,
                                     const sim::FencePolicy &Fences,
                                     unsigned Runs, uint64_t Seed) {
  CostMeasurement M;
  Rng Master(Seed);
  double RuntimeSum = 0.0;
  double EnergySum = 0.0;

  // "Natively" means without any testing environment: no stress, no
  // thread randomisation (paper Sec. 6).
  sim::ContextLease Ctx; // One recycled engine across all measured runs.
  for (unsigned I = 0; M.RunsUsed != Runs && I != 4 * Runs; ++I) {
    Rng R = Master.fork(I);
    sim::Device Dev(Ctx.get(), Chip, R.next());
    Dev.setFencePolicy(&Fences);
    Dev.setBuiltinFences(!apps::isNoFenceVariant(App));

    std::unique_ptr<apps::Application> Instance = apps::makeApp(App);
    Dev.setMaxTicks(Instance->maxTicks());
    Instance->setup(Dev, R);
    if (!Instance->run(Dev) || !Instance->checkPostCondition(Dev)) {
      // The paper discards erroneous runs from the performance averages.
      ++M.RunsDiscarded;
      continue;
    }
    ++M.RunsUsed;
    RuntimeSum += Dev.runtimeMs();
    const sim::EnergyEstimate E = Dev.energy();
    M.EnergyValid = E.Valid;
    EnergySum += E.Joules;
  }

  if (M.RunsUsed != 0) {
    M.RuntimeMs = RuntimeSum / M.RunsUsed;
    M.EnergyJ = EnergySum / M.RunsUsed;
  }
  return M;
}
