//===- bench/bench_context_reuse.cpp - Execution-engine reuse speedup --------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// A/B-measures the reusable execution engine (DESIGN.md Sec. 12) on a
// fixed Tab. 5 sub-grid, same seeds in both arms:
//
//  * fresh:  a brand-new ExecutionContext per run — every run pays the
//    construction cost the pre-engine code paid per sim::Device (cold
//    memory image, store buffers, async slots, scheduler containers).
//  * reused: one ExecutionContext for all runs, reset(seed) between runs
//    (dirty-address zeroing, recycled slot storage).
//
// Verdict sequences must be identical — the fresh-vs-reused half of the
// determinism contract — and that identity is this benchmark's hard
// failure condition. The speedup is the committed perf headline; a litmus
// reuse throughput figure rides along for the Sec. 3 tuning hot path.
//
//===----------------------------------------------------------------------===//

#include "apps/Application.h"
#include "litmus/Litmus.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

using namespace gpuwmm;

namespace {

struct GridPoint {
  apps::AppKind App;
  const sim::ChipProfile *Chip;
  stress::Environment Env;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main() {
  // The sub-grid: two chips spanning both patch sizes, the tuned-stress
  // environment the campaign leans on hardest, four representative apps
  // (mutex, non-blocking queue, reduction handshake, no-fence variant).
  const sim::ChipProfile *Titan = sim::ChipProfile::lookup("titan");
  const sim::ChipProfile *Gtx980 = sim::ChipProfile::lookup("980");
  const stress::Environment SysPlus{stress::StressKind::Sys, true};
  std::vector<GridPoint> Grid;
  for (const sim::ChipProfile *Chip : {Titan, Gtx980})
    for (apps::AppKind App :
         {apps::AppKind::CbeDot, apps::AppKind::CtOctree,
          apps::AppKind::SdkRed, apps::AppKind::CubScanNf})
      Grid.push_back({App, Chip, SysPlus});

  const unsigned Runs = scaledCount(60);
  const uint64_t Seed = 42;
  std::printf("context reuse: %zu grid points x %u runs, seed %llu\n\n",
              Grid.size(), Runs, static_cast<unsigned long long>(Seed));

  // --- Arm A: fresh context per run ----------------------------------------
  std::vector<apps::AppVerdict> FreshVerdicts;
  const double FreshStart = now();
  for (size_t G = 0; G != Grid.size(); ++G) {
    const auto Tuned =
        stress::TunedStressParams::paperDefaults(*Grid[G].Chip);
    for (unsigned I = 0; I != Runs; ++I) {
      sim::ExecutionContext Ctx; // Cold state, every run.
      FreshVerdicts.push_back(apps::runApplicationOnce(
          Ctx, Grid[G].App, *Grid[G].Chip, Grid[G].Env, Tuned,
          /*Policy=*/nullptr,
          Rng::deriveStream(Rng::deriveStream(Seed, G), I)));
    }
  }
  const double FreshSeconds = now() - FreshStart;

  // --- Arm B: one reused context -------------------------------------------
  std::vector<apps::AppVerdict> ReusedVerdicts;
  sim::ExecutionContext Ctx;
  const double ReusedStart = now();
  for (size_t G = 0; G != Grid.size(); ++G) {
    const auto Tuned =
        stress::TunedStressParams::paperDefaults(*Grid[G].Chip);
    for (unsigned I = 0; I != Runs; ++I)
      ReusedVerdicts.push_back(apps::runApplicationOnce(
          Ctx, Grid[G].App, *Grid[G].Chip, Grid[G].Env, Tuned,
          /*Policy=*/nullptr,
          Rng::deriveStream(Rng::deriveStream(Seed, G), I)));
  }
  const double ReusedSeconds = now() - ReusedStart;

  const bool Identical = FreshVerdicts == ReusedVerdicts;
  const double Speedup = ReusedSeconds > 0.0 ? FreshSeconds / ReusedSeconds
                                             : 0.0;

  Table T({"arm", "seconds", "us/run", "identical"});
  const double TotalRuns = static_cast<double>(Grid.size()) * Runs;
  T.addRow({"fresh-per-run", formatDouble(FreshSeconds, 3),
            formatDouble(1e6 * FreshSeconds / TotalRuns, 1), "-"});
  T.addRow({"reused-context", formatDouble(ReusedSeconds, 3),
            formatDouble(1e6 * ReusedSeconds / TotalRuns, 1),
            Identical ? "yes" : "NO"});
  T.print(std::cout);
  std::printf("\napp-layer speedup from engine reuse: %.2fx\n", Speedup);

  // Litmus tuning hot path: the runner's leased context makes countWeak
  // allocation-free per run; report its throughput for the record.
  litmus::LitmusRunner Runner(*Titan, Seed);
  const unsigned LitmusRuns = scaledCount(4000);
  const auto Tuned = stress::TunedStressParams::paperDefaults(*Titan);
  const double LitmusStart = now();
  const unsigned Weak = Runner.countWeak(
      {litmus::LitmusKind::MP, 2 * Titan->PatchSizeWords},
      litmus::LitmusRunner::MicroStress::at(Tuned.Seq, 0), LitmusRuns);
  const double LitmusSeconds = now() - LitmusStart;
  std::printf("litmus reused-context throughput: %.0f runs/s "
              "(%u/%u weak)\n",
              LitmusRuns / LitmusSeconds, Weak, LitmusRuns);

  std::printf("\n{\"bench\": \"context_reuse\", \"grid_points\": %zu, "
              "\"runs_per_point\": %u, \"fresh_seconds\": %.3f, "
              "\"reused_seconds\": %.3f, \"speedup\": %.3f, "
              "\"litmus_runs_per_sec\": %.0f, \"identical\": %s}\n",
              Grid.size(), Runs, FreshSeconds, ReusedSeconds, Speedup,
              LitmusRuns / LitmusSeconds, Identical ? "true" : "false");

  // Fresh-vs-reused identity is the determinism contract: hard-fail on
  // divergence. The speedup is hardware-dependent and only reported.
  return Identical ? 0 : 1;
}
