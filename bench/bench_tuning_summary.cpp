//===- bench/bench_tuning_summary.cpp - Paper Tab. 2 -------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Tab. 2: for every chip, run the full Sec. 3 tuning pipeline
// (patch finding, access-sequence ranking, spread finding) and report the
// derived stressing parameters alongside the paper's published values.
//
//===----------------------------------------------------------------------===//

#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"
#include "tuning/Tuner.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const double Scale =
      Opts.getDouble("scale", 1.0) * experimentScale();
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 7));
  const std::string Only = Opts.getString("chip", "");

  std::printf("== Table 2: stressing parameters and tuning cost ==\n");
  std::printf("(execution counts scaled by %.2f; the paper used ~68M "
              "executions per chip)\n\n",
              Scale);

  Table T({"chip", "c. patch size", "sequence", "spread", "executions",
           "time (s)", "paper: patch/seq/spread", "agree"});

  size_t NumChips = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(NumChips);
  for (size_t I = 0; I != NumChips; ++I) {
    const sim::ChipProfile &Chip = Chips[I];
    if (!Only.empty() && Only != Chip.ShortName)
      continue;

    tuning::Tuner Tune(Chip, Rng::deriveStream(Seed, I));
    const tuning::TuningResult R = Tune.tune(Scale);
    const auto Paper = stress::TunedStressParams::paperDefaults(Chip);

    const bool PatchAgrees = R.Params.PatchWords == Paper.PatchWords;
    const bool SpreadAgrees = R.Params.Spread == Paper.Spread;
    const bool SeqMixes = [&] {
      bool HasLd = false, HasSt = false;
      for (unsigned K = 0; K != R.Params.Seq.length(); ++K)
        (R.Params.Seq.isStore(K) ? HasSt : HasLd) = true;
      return HasLd && HasSt;
    }();

    std::string Agree;
    Agree += PatchAgrees ? 'P' : '.';
    Agree += SeqMixes ? 'S' : '.';
    Agree += SpreadAgrees ? 'M' : '.';

    T.addRow({Chip.ShortName, std::to_string(R.Params.PatchWords),
              R.Params.Seq.str(), std::to_string(R.Params.Spread),
              std::to_string(R.Executions), formatDouble(R.WallSeconds, 1),
              std::string(std::to_string(Paper.PatchWords)) + " / " +
                  Paper.Seq.str() + " / " + std::to_string(Paper.Spread),
              Agree});
  }
  T.print(std::cout);
  std::printf("\nagree column: P = critical patch size matches the paper, "
              "S = selected sequence mixes loads and stores (as all of the "
              "paper's winners do), M = spread matches the paper.\n");
  return 0;
}
