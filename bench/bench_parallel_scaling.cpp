//===- bench/bench_parallel_scaling.cpp - Campaign engine speedup ------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Measures the parallel campaign engine on a Tab. 5 sub-grid: wall-clock
// at 1 job versus a ladder of job counts up to the host's parallelism,
// verifying at every rung that the report is byte-identical to the serial
// one (the determinism contract) while the wall-clock shrinks.
//
// Output: a table of jobs / seconds / speedup / efficiency plus a JSON
// line for BENCH_*.json tracking. Speedup is hardware-bound: expect ~N x
// on N idle cores (>= 3x at 8 jobs on 8 cores); a single-core host runs
// the ladder and reports ~1x throughout.
//
//===----------------------------------------------------------------------===//

#include "harness/Campaign.h"
#include "support/Options.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>

using namespace gpuwmm;

namespace {

double timedRun(const harness::CampaignConfig &Config, unsigned Jobs,
                std::string &Json) {
  ThreadPool Pool(Jobs);
  const auto Start = std::chrono::steady_clock::now();
  const harness::CampaignReport Report =
      harness::runCampaign(Config, &Pool);
  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  std::ostringstream OS;
  harness::writeCampaignJson(Report, OS);
  Json = OS.str();
  return Seconds;
}

} // namespace

int main() {
  // The sub-grid: two chips spanning both patch sizes, the four
  // "+"-randomised environments, all ten applications.
  harness::CampaignConfig Config;
  Config.Chips = {sim::ChipProfile::lookup("titan"),
                  sim::ChipProfile::lookup("980")};
  Config.Envs = {{stress::StressKind::None, true},
                 {stress::StressKind::Sys, true},
                 {stress::StressKind::Rand, true},
                 {stress::StressKind::Cache, true}};
  for (apps::AppKind App : apps::AllAppKinds)
    Config.Apps.push_back(App);
  Config.Runs = scaledCount(25);
  Config.Seed = 1;

  const unsigned MaxJobs = ThreadPool::defaultJobs();
  std::printf("parallel scaling: %zu cells x %u runs, up to %u jobs\n\n",
              Config.Chips.size() * Config.Envs.size() * Config.Apps.size(),
              Config.Runs, MaxJobs);

  std::string SerialJson;
  const double SerialSeconds = timedRun(Config, 1, SerialJson);

  Table T({"jobs", "seconds", "speedup", "efficiency", "identical"});
  char Buf[3][32];
  std::snprintf(Buf[0], sizeof(Buf[0]), "%.2f", SerialSeconds);
  T.addRow({"1", Buf[0], "1.00x", "100%", "yes"});

  bool AllIdentical = true;
  double BestSpeedup = 1.0;
  for (unsigned Jobs = 2; Jobs <= MaxJobs; Jobs *= 2) {
    std::string Json;
    const double Seconds = timedRun(Config, Jobs, Json);
    const bool Identical = Json == SerialJson;
    AllIdentical = AllIdentical && Identical;
    const double Speedup = SerialSeconds / Seconds;
    BestSpeedup = std::max(BestSpeedup, Speedup);
    std::snprintf(Buf[0], sizeof(Buf[0]), "%.2f", Seconds);
    std::snprintf(Buf[1], sizeof(Buf[1]), "%.2fx", Speedup);
    std::snprintf(Buf[2], sizeof(Buf[2]), "%.0f%%",
                  100.0 * Speedup / Jobs);
    T.addRow({std::to_string(Jobs), Buf[0], Buf[1], Buf[2],
              Identical ? "yes" : "NO"});
  }
  T.print(std::cout);

  std::printf("\n{\"bench\": \"parallel_scaling\", \"max_jobs\": %u, "
              "\"serial_seconds\": %.3f, \"best_speedup\": %.2f, "
              "\"deterministic\": %s}\n",
              MaxJobs, SerialSeconds, BestSpeedup,
              AllIdentical ? "true" : "false");

  // Determinism is a hard failure; speedup depends on the host and is
  // reported, not asserted.
  return AllIdentical ? 0 : 1;
}
