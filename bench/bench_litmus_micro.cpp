//===- bench/bench_litmus_micro.cpp - Scalar vs batched litmus A/B -----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// A/B-measures the batched litmus engine (DESIGN.md Sec. 17) against the
// scalar coroutine interpreter on the unit of work the Sec. 3 tuning
// pipeline performs hundreds of millions of times: one full litmus-test
// execution. Two configurations per arm:
//
//  * plain:    native MP executions (no stress) — the pure interpreter
//              loop, where the batched engine's flat op streams and
//              recycled SoA slabs pay off most directly.
//  * stressed: tuned sys-str MP executions — the tuning pipeline's real
//              workload, with the per-run stress source amortised.
//
// Hard failure conditions:
//  * any arm's per-run weak-verdict sequence diverges between scalar and
//    batched execution (a determinism-contract violation), or
//  * a baseline JSON is supplied (--baseline=FILE or GPUWMM_BENCH_BASELINE)
//    and the scalar plain-path throughput regressed more than 2% against
//    its committed scalar_runs_per_sec — the guard that keeps the shared
//    scalar engine honest while the batched engine carries the speedup.
//    The committed reference lives in bench/baselines/ (same-machine
//    comparisons only; see its README).
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gpuwmm;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts "scalar_runs_per_sec": <number> from a baseline JSON (no JSON
/// dependency; the bench writes the field itself, so the shape is known).
double baselineScalarRunsPerSec(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "error: cannot read baseline '%s'\n", Path.c_str());
    return -1.0;
  }
  std::ostringstream Text;
  Text << IS.rdbuf();
  const std::string Key = "\"scalar_runs_per_sec\": ";
  const size_t At = Text.str().find(Key);
  if (At == std::string::npos) {
    std::fprintf(stderr, "error: no scalar_runs_per_sec in '%s'\n",
                 Path.c_str());
    return -1.0;
  }
  return std::strtod(Text.str().c_str() + At + Key.size(), nullptr);
}

/// One configuration's A/B: scalar runOnce loop vs one countWeakBatch
/// call, per-run verdicts compared bit for bit.
struct ArmResult {
  double ScalarSeconds = 0;
  double BatchedSeconds = 0;
  bool Identical = false;
  double speedup() const {
    return BatchedSeconds > 0.0 ? ScalarSeconds / BatchedSeconds : 0.0;
  }
};

ArmResult runArm(const sim::ChipProfile &Chip, const litmus::Program &P,
                 unsigned Distance,
                 const litmus::LitmusRunner::MicroStress &S, unsigned Runs,
                 uint64_t Seed) {
  ArmResult R;
  std::vector<uint8_t> ScalarWeak, BatchedWeak, Slice;
  ScalarWeak.reserve(Runs);
  BatchedWeak.reserve(Runs);

  // Interleave the engines in slices so clock-speed drift (thermal
  // throttling, noisy neighbours) hits both arms equally instead of
  // whichever ran second. Each runner still consumes its seed stream
  // contiguously, so per-run verdicts stay comparable index by index.
  litmus::LitmusRunner Scalar(Chip, Seed);
  litmus::LitmusRunner Batched(Chip, Seed);
  const unsigned SliceRuns = std::max(1u, Runs / 20);
  for (unsigned Done = 0; Done != Runs;) {
    const unsigned N = std::min(SliceRuns, Runs - Done);
    double T = now();
    for (unsigned I = 0; I != N; ++I)
      ScalarWeak.push_back(Scalar.runOnce(P, Distance, S));
    R.ScalarSeconds += now() - T;
    T = now();
    (void)Batched.countWeakBatch(P, Distance, S, N, {}, &Slice);
    R.BatchedSeconds += now() - T;
    BatchedWeak.insert(BatchedWeak.end(), Slice.begin(), Slice.end());
    Done += N;
  }

  R.Identical = ScalarWeak == BatchedWeak;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  const unsigned Runs = scaledCount(40000);
  const uint64_t Seed = 42;
  const litmus::Program &P = litmus::catalogProgram(litmus::LitmusKind::MP);
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const auto Stress = litmus::LitmusRunner::MicroStress::at(Tuned.Seq, 64);
  const unsigned Distance = 2 * Chip.PatchSizeWords;

  std::printf("litmus micro: %u MP executions per arm and configuration, "
              "seed %llu, K=%u\n\n",
              Runs, static_cast<unsigned long long>(Seed),
              sim::defaultBatchWidth());

  // Warm the thread-local context pool so no arm pays first-run
  // allocation.
  {
    litmus::LitmusRunner Warm(Chip, Seed);
    (void)Warm.countWeak(P, Distance, Stress, 200);
    for (unsigned I = 0; I != 200; ++I)
      (void)Warm.runOnce(P, Distance, litmus::LitmusRunner::MicroStress::none());
  }

  const ArmResult Plain =
      runArm(Chip, P, Distance, litmus::LitmusRunner::MicroStress::none(),
             Runs, Seed);
  const ArmResult Stressed = runArm(Chip, P, Distance, Stress, Runs, Seed);

  const bool Identical = Plain.Identical && Stressed.Identical;
  const double ScalarRate = Runs / Plain.ScalarSeconds;
  const double BatchedRate = Runs / Plain.BatchedSeconds;
  const double StressedScalarRate = Runs / Stressed.ScalarSeconds;
  const double StressedBatchedRate = Runs / Stressed.BatchedSeconds;

  Table T({"config", "engine", "seconds", "runs/s", "speedup", "identical"});
  T.addRow({"plain", "scalar", formatDouble(Plain.ScalarSeconds, 3),
            formatDouble(ScalarRate, 0), "1.00x", "-"});
  T.addRow({"plain", "batched", formatDouble(Plain.BatchedSeconds, 3),
            formatDouble(BatchedRate, 0),
            formatDouble(Plain.speedup(), 2) + "x",
            Plain.Identical ? "yes" : "NO"});
  T.addRow({"stressed", "scalar", formatDouble(Stressed.ScalarSeconds, 3),
            formatDouble(StressedScalarRate, 0), "1.00x", "-"});
  T.addRow({"stressed", "batched", formatDouble(Stressed.BatchedSeconds, 3),
            formatDouble(StressedBatchedRate, 0),
            formatDouble(Stressed.speedup(), 2) + "x",
            Stressed.Identical ? "yes" : "NO"});
  T.print(std::cout);

  // Optional committed-baseline guard for the scalar plain path (>2%
  // regression fails). Same-machine comparisons only — never enabled
  // blindly in CI.
  bool BaselineOk = true;
  std::string BaselinePath = Opts.getString("baseline", "");
  if (BaselinePath.empty())
    if (const char *Env = std::getenv("GPUWMM_BENCH_BASELINE"))
      BaselinePath = Env;
  if (!BaselinePath.empty()) {
    const double Reference = baselineScalarRunsPerSec(BaselinePath);
    if (Reference <= 0.0) {
      BaselineOk = false;
    } else {
      const double Ratio = ScalarRate / Reference;
      BaselineOk = Ratio >= 0.98;
      std::printf("\nscalar plain path vs baseline %s: %.0f vs %.0f runs/s "
                  "(%+.1f%%) -> %s\n",
                  BaselinePath.c_str(), ScalarRate, Reference,
                  100.0 * (Ratio - 1.0),
                  BaselineOk ? "ok" : "REGRESSION (>2%)");
    }
  }

  std::printf("\n{\"bench\": \"batched_litmus\", \"runs\": %u, "
              "\"scalar_runs_per_sec\": %.0f, "
              "\"batched_runs_per_sec\": %.0f, \"speedup\": %.2f, "
              "\"stressed_scalar_runs_per_sec\": %.0f, "
              "\"stressed_batched_runs_per_sec\": %.0f, "
              "\"stressed_speedup\": %.2f, \"identical\": %s}\n",
              Runs, ScalarRate, BatchedRate, Plain.speedup(),
              StressedScalarRate, StressedBatchedRate, Stressed.speedup(),
              Identical ? "true" : "false");

  // Identity is the determinism contract; the baseline guard is the
  // scalar-path-unharmed contract. The speedup itself is reported, not
  // gated: machines differ, but divergence and scalar regressions are
  // bugs everywhere.
  return Identical && BaselineOk ? 0 : 1;
}
