//===- bench/bench_litmus_micro.cpp - Litmus throughput benchmarks ------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// google-benchmark throughput of full litmus-test executions, the unit of
// work the Sec. 3 tuning pipeline performs hundreds of millions of times
// in the paper (half a billion micro-benchmark executions).
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "stress/Environment.h"

#include <benchmark/benchmark.h>

using namespace gpuwmm;
using litmus::LitmusInstance;
using litmus::LitmusKind;
using litmus::LitmusRunner;

namespace {

void BM_LitmusNative(benchmark::State &State) {
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  LitmusRunner Runner(Chip, 42);
  const LitmusInstance T{static_cast<LitmusKind>(State.range(0)), 64};
  unsigned Weak = 0;
  for (auto _ : State)
    Weak += Runner.runOnce(T, LitmusRunner::MicroStress::none());
  benchmark::DoNotOptimize(Weak);
  State.SetItemsProcessed(State.iterations());
}

void BM_LitmusStressed(benchmark::State &State) {
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  LitmusRunner Runner(Chip, 42);
  const LitmusInstance T{static_cast<LitmusKind>(State.range(0)), 64};
  const auto Seq = stress::AccessSequence::parse("ld st2 ld");
  const auto S = LitmusRunner::MicroStress::at(Seq, 64);
  unsigned Weak = 0;
  for (auto _ : State)
    Weak += Runner.runOnce(T, S);
  benchmark::DoNotOptimize(Weak);
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(BM_LitmusNative)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_LitmusStressed)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
