//===- bench/bench_streaming_oracle.cpp - Online oracle overhead A/B ----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// A/B/C/D-measures the streaming consistency oracle (DESIGN.md Sec. 15) on
// the litmus hot path (stressed MP executions, the unit `campaign
// --oracle=all` pays per checked run):
//
//  * off:        no observation — the production path.
//  * trace-only: the recorder seam alone (events appended, never checked).
//  * streaming:  the online checker as the run's sink (axioms + live
//                po ∪ rf ∪ co ∪ fr graph, frontier-bounded memory).
//  * post-hoc:   record, then replay the trace through the reference
//                checker — what --oracle cost before the streaming rework.
//
// Hard failure conditions:
//  * any arm's weak-outcome sequence differs from the off arm's (the
//    oracle perturbed the simulation — a determinism-contract violation),
//  * a streamed run is judged inconsistent (the simulator must satisfy its
//    own model), or
//  * the streaming arm costs more than STREAM_BUDGET times the trace-only
//    arm (the in-process relative budget: checking while tracing may cost
//    a bounded multiple of tracing alone, measured in the same process so
//    machine speed cancels out), or
//  * a baseline JSON is supplied (--baseline=FILE or GPUWMM_BENCH_BASELINE)
//    and the off-arm throughput regressed more than 2% against its
//    committed off_runs_per_sec (bench/baselines/; same-machine only).
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "model/ConsistencyChecker.h"
#include "model/StreamingChecker.h"
#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gpuwmm;

namespace {

/// The in-process relative budget: streaming-checked runs may cost at most
/// this multiple of tracing-only runs. Measured ~2x on the reference
/// container; 3.5x leaves noise headroom while still catching an
/// accidental per-event allocation or a quadratic frontier walk.
constexpr double StreamBudget = 3.5;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts "off_runs_per_sec": <number> from a baseline JSON (no JSON
/// dependency; the bench writes the field itself, so the shape is known).
double baselineOffRunsPerSec(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "error: cannot read baseline '%s'\n", Path.c_str());
    return -1.0;
  }
  std::ostringstream Text;
  Text << IS.rdbuf();
  const std::string Key = "\"off_runs_per_sec\": ";
  const size_t At = Text.str().find(Key);
  if (At == std::string::npos) {
    std::fprintf(stderr, "error: no off_runs_per_sec in '%s'\n",
                 Path.c_str());
    return -1.0;
  }
  return std::strtod(Text.str().c_str() + At + Key.size(), nullptr);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  const unsigned Runs = scaledCount(20000);
  const uint64_t Seed = 42;
  const litmus::Program &P = litmus::catalogProgram(litmus::LitmusKind::MP);
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const auto Stress = litmus::LitmusRunner::MicroStress::at(Tuned.Seq, 64);
  const unsigned Distance = 2 * Chip.PatchSizeWords;

  std::printf("streaming oracle: %u stressed MP executions per arm, "
              "seed %llu\n\n",
              Runs, static_cast<unsigned long long>(Seed));

  // Warm the thread-local context pool so no arm pays first-run
  // allocation.
  {
    litmus::LitmusRunner Warm(Chip, Seed);
    (void)Warm.countWeak(P, Distance, Stress, 200);
  }

  // --- Arm A: observation off (the production path) --------------------------
  std::vector<uint8_t> OffWeak(Runs), TraceWeak(Runs), StreamWeak(Runs),
      PostWeak(Runs);
  litmus::LitmusRunner Off(Chip, Seed);
  const double OffStart = now();
  for (unsigned I = 0; I != Runs; ++I)
    OffWeak[I] = Off.runOnce(P, Distance, Stress);
  const double OffSeconds = now() - OffStart;

  // --- Arm B: trace-only (record, never check) -------------------------------
  litmus::LitmusRunner Traced(Chip, Seed);
  litmus::LitmusRunner::RunOpts TraceOpts;
  TraceOpts.Trace = true;
  const double TraceStart = now();
  for (unsigned I = 0; I != Runs; ++I)
    TraceWeak[I] = Traced.runOnce(P, Distance, Stress, TraceOpts);
  const double TraceSeconds = now() - TraceStart;

  // --- Arm C: streaming oracle ----------------------------------------------
  litmus::LitmusRunner Streamed(Chip, Seed);
  model::StreamingChecker Checker;
  litmus::LitmusRunner::RunOpts StreamOpts;
  StreamOpts.Sink = &Checker;
  unsigned StreamWeakVerdicts = 0, StreamViolations = 0;
  const double StreamStart = now();
  for (unsigned I = 0; I != Runs; ++I) {
    Checker.begin();
    StreamWeak[I] = Streamed.runOnce(P, Distance, Stress, StreamOpts);
    const model::StreamVerdict &R = Checker.finish();
    StreamViolations += !R.AxiomsOk;
    StreamWeakVerdicts += R.weak();
  }
  const double StreamSeconds = now() - StreamStart;

  // --- Arm D: post-hoc (record + replay through the reference checker) ------
  litmus::LitmusRunner Replayed(Chip, Seed);
  model::ConsistencyChecker PostHoc;
  unsigned PostViolations = 0;
  const double PostStart = now();
  for (unsigned I = 0; I != Runs; ++I) {
    PostWeak[I] = Replayed.runOnce(P, Distance, Stress, TraceOpts);
    PostViolations += !PostHoc.check(Replayed.trace()).AxiomsOk;
  }
  const double PostSeconds = now() - PostStart;

  const bool Identical = OffWeak == TraceWeak && OffWeak == StreamWeak &&
                         OffWeak == PostWeak;
  const bool Clean = StreamViolations == 0 && PostViolations == 0;
  const double OffRate = Runs / OffSeconds;
  const double TraceRate = Runs / TraceSeconds;
  const double StreamRate = Runs / StreamSeconds;
  const double PostRate = Runs / PostSeconds;
  const double StreamRatio =
      TraceSeconds > 0.0 ? StreamSeconds / TraceSeconds : 0.0;
  const bool WithinBudget = StreamRatio <= StreamBudget;

  Table T({"arm", "seconds", "runs/s", "identical"});
  T.addRow({"off", formatDouble(OffSeconds, 3), formatDouble(OffRate, 0),
            "-"});
  T.addRow({"trace-only", formatDouble(TraceSeconds, 3),
            formatDouble(TraceRate, 0), OffWeak == TraceWeak ? "yes" : "NO"});
  T.addRow({"streaming", formatDouble(StreamSeconds, 3),
            formatDouble(StreamRate, 0),
            OffWeak == StreamWeak ? "yes" : "NO"});
  T.addRow({"post-hoc", formatDouble(PostSeconds, 3),
            formatDouble(PostRate, 0), OffWeak == PostWeak ? "yes" : "NO"});
  T.print(std::cout);
  std::printf("\nstreaming vs trace-only: %.2fx (budget %.1fx) -> %s\n",
              StreamRatio, StreamBudget,
              WithinBudget ? "ok" : "OVER BUDGET");
  std::printf("streaming weak verdicts: %u/%u; violations: %u\n",
              StreamWeakVerdicts, Runs, StreamViolations);

  // Optional committed-baseline guard for the off path (>2% regression
  // fails). Same-machine comparisons only — never enabled blindly in CI.
  bool BaselineOk = true;
  std::string BaselinePath = Opts.getString("baseline", "");
  if (BaselinePath.empty())
    if (const char *Env = std::getenv("GPUWMM_BENCH_BASELINE"))
      BaselinePath = Env;
  if (!BaselinePath.empty()) {
    const double Reference = baselineOffRunsPerSec(BaselinePath);
    if (Reference <= 0.0) {
      BaselineOk = false;
    } else {
      const double Ratio = OffRate / Reference;
      BaselineOk = Ratio >= 0.98;
      std::printf("off-path vs baseline %s: %.0f vs %.0f runs/s "
                  "(%+.1f%%) -> %s\n",
                  BaselinePath.c_str(), OffRate, Reference,
                  100.0 * (Ratio - 1.0),
                  BaselineOk ? "ok" : "REGRESSION (>2%)");
    }
  }

  std::printf("\n{\"bench\": \"streaming_oracle\", \"runs\": %u, "
              "\"off_runs_per_sec\": %.0f, \"trace_runs_per_sec\": %.0f, "
              "\"stream_runs_per_sec\": %.0f, \"posthoc_runs_per_sec\": "
              "%.0f, \"stream_vs_trace_ratio\": %.2f, \"identical\": %s}\n",
              Runs, OffRate, TraceRate, StreamRate, PostRate, StreamRatio,
              Identical ? "true" : "false");

  // Identity and axiom-cleanliness are correctness contracts; the relative
  // budget is the "checking every run is affordable" contract.
  return Identical && Clean && WithinBudget && BaselineOk ? 0 : 1;
}
