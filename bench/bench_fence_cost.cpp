//===- bench/bench_fence_cost.cpp - Paper Fig. 5 ------------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Fig. 5: for every chip/application combination, the runtime
// and energy of the application with no fences, with the fences found by
// empirical insertion ("emp", derived per GPU as in the paper), and with a
// fence after every access ("cons"). Prints the scatter-plot points
// (log-log in the paper) plus the headline statistics the paper reports:
// median overheads of both strategies.
//
//===----------------------------------------------------------------------===//

#include "harden/FenceInsertion.h"
#include "harness/CostBenchmark.h"
#include "support/Options.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

namespace {

const apps::AppKind CostApps[] = {
    apps::AppKind::CbeHt,    apps::AppKind::CbeDot,
    apps::AppKind::CtOctree, apps::AppKind::TpoTm,
    apps::AppKind::SdkRedNf, apps::AppKind::CubScanNf,
    apps::AppKind::LsBhNf};

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 23));
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(25)));
  const unsigned StableRuns = static_cast<unsigned>(
      Opts.getInt("stable-runs", scaledCount(150)));
  const std::string OnlyChip = Opts.getString("chip", "");

  std::printf("== Figure 5: cost of {no, emp, cons} fences ==\n");
  std::printf("(averaged over %u passing native runs per point; energy "
              "only on chips with power instrumentation)\n\n",
              Runs);

  size_t NumChips = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(NumChips);

  Table T({"chip", "app", "no f. ms", "emp ms", "cons ms", "emp ovh",
           "cons ovh", "no f. J", "emp J", "cons J"});

  std::vector<double> EmpRuntimeOvh, ConsRuntimeOvh;
  std::vector<double> EmpEnergyOvh, ConsEnergyOvh;
  unsigned RuntimePoints = 0, EnergyPoints = 0;

  for (size_t CI = 0; CI != NumChips; ++CI) {
    const sim::ChipProfile &Chip = Chips[CI];
    if (!OnlyChip.empty() && OnlyChip != Chip.ShortName)
      continue;
    for (apps::AppKind App : CostApps) {
      const unsigned NumSites = apps::appNumSites(App);
      const uint64_t PairSeed = Rng::deriveStream(
          Rng::deriveStream(Seed, CI), static_cast<uint64_t>(App));
      // Disjoint branches: the oracle internally derives per-check streams
      // from its seed, so it gets its own branch; the measurement stream is
      // shared across the three fence policies (paired by design).
      const uint64_t OracleSeed = Rng::deriveStream(PairSeed, 0);
      const uint64_t MeasureSeed = Rng::deriveStream(PairSeed, 1);

      // emp fences are found per GPU, as in the paper (Sec. 6).
      harden::AppCheckOracle Oracle(App, Chip, OracleSeed, StableRuns);
      const auto Insertion = harden::empiricalFenceInsertion(
          sim::FencePolicy::all(NumSites), Oracle);

      const auto NoF = harness::measureCost(
          App, Chip, sim::FencePolicy::none(NumSites), Runs, MeasureSeed);
      const auto Emp = harness::measureCost(App, Chip, Insertion.Fences,
                                            Runs, MeasureSeed);
      const auto Cons = harness::measureCost(
          App, Chip, sim::FencePolicy::all(NumSites), Runs, MeasureSeed);

      const double EmpOvh = Emp.RuntimeMs / NoF.RuntimeMs;
      const double ConsOvh = Cons.RuntimeMs / NoF.RuntimeMs;
      EmpRuntimeOvh.push_back(EmpOvh);
      ConsRuntimeOvh.push_back(ConsOvh);
      ++RuntimePoints;

      std::vector<std::string> Row{
          Chip.ShortName,
          apps::appName(App),
          formatDouble(NoF.RuntimeMs, 2),
          formatDouble(Emp.RuntimeMs, 2),
          formatDouble(Cons.RuntimeMs, 2),
          formatOverheadPercent(EmpOvh),
          formatOverheadPercent(ConsOvh)};
      if (NoF.EnergyValid) {
        EmpEnergyOvh.push_back(Emp.EnergyJ / NoF.EnergyJ);
        ConsEnergyOvh.push_back(Cons.EnergyJ / NoF.EnergyJ);
        ++EnergyPoints;
        Row.push_back(formatDouble(NoF.EnergyJ, 2));
        Row.push_back(formatDouble(Emp.EnergyJ, 2));
        Row.push_back(formatDouble(Cons.EnergyJ, 2));
      } else {
        Row.push_back("-");
        Row.push_back("-");
        Row.push_back("-");
      }
      T.addRow(Row);
    }
  }
  T.print(std::cout);

  std::printf("\n%u runtime points, %u energy points (paper: 93 runtime, "
              "54 energy before outlier removal)\n",
              RuntimePoints, EnergyPoints);
  std::printf("median runtime overhead: emp %s, cons %s (paper: emp <3%%, "
              "cons 174%%)\n",
              formatOverheadPercent(median(EmpRuntimeOvh)).c_str(),
              formatOverheadPercent(median(ConsRuntimeOvh)).c_str());
  if (!EmpEnergyOvh.empty())
    std::printf("median energy overhead:  emp %s, cons %s (paper: emp <3%%, "
                "cons 171%%)\n",
                formatOverheadPercent(median(EmpEnergyOvh)).c_str(),
                formatOverheadPercent(median(ConsEnergyOvh)).c_str());
  return 0;
}
