//===- bench/bench_app_rates.cpp - Per-application error-rate diagnostics ----===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Diagnostic companion to Tab. 5: prints, for one chip, the raw error rate
// of every application under every testing environment (the aggregated a/b
// summary hides these). Also reports SC-mode sanity (must be 0 errors) and
// mean simulated runtime.
//
//===----------------------------------------------------------------------===//

#include "harness/EnvironmentRunner.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const std::string ChipName = Opts.getString("chip", "titan");
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(60)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 21));
  const std::string OnlyApp = Opts.getString("app", "");

  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(ChipName);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", ChipName.c_str());
    return 1;
  }
  const auto Tuned = stress::TunedStressParams::paperDefaults(*Chip);

  std::printf("== Error rates per application and environment: %s, %u runs "
              "each ==\n\n",
              Chip->Name, Runs);

  std::vector<std::string> Headers{"app"};
  for (const auto &Env : stress::Environment::all())
    Headers.push_back(Env.name());
  Headers.push_back("SC");
  Table T(Headers);

  for (apps::AppKind App : apps::AllAppKinds) {
    if (!OnlyApp.empty() && OnlyApp != apps::appName(App))
      continue;
    std::vector<std::string> Row{apps::appName(App)};
    for (const auto &Env : stress::Environment::all()) {
      const auto Cell = harness::runCell(
          App, *Chip, Env, Tuned, Runs,
          Rng::deriveStream(Seed, 2 * static_cast<uint64_t>(App)));
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.0f%%%s",
                    100.0 * Cell.errorRate(),
                    Cell.Timeouts ? "t" : "");
      Row.push_back(Buf);
    }
    // SC sanity: the application must always pass under sequential
    // consistency (its races are benign by design).
    unsigned ScErrors = 0;
    // 2*App / 2*App+1: disjoint top-level streams per app for the rate
    // cells and the SC-sanity runs.
    Rng Master(Rng::deriveStream(Seed, 2 * static_cast<uint64_t>(App) + 1));
    for (unsigned I = 0; I != std::min(Runs, 20u); ++I) {
      const auto V = apps::runApplicationOnce(
          App, *Chip, {stress::StressKind::None, false}, Tuned, nullptr,
          Master.fork(I).next(), /*Sequential=*/true);
      ScErrors += apps::isErroneous(V);
    }
    Row.push_back(ScErrors ? std::to_string(ScErrors) + "!" : "ok");
    T.addRow(Row);
  }
  T.print(std::cout);
  std::printf("\n('t' marks cells where some erroneous runs were timeouts; "
              "SC column must be 'ok')\n");
  return 0;
}
