//===- bench/bench_app_rates.cpp - Scalar vs batched application A/B ----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// A/B-measures the batched application engine (DESIGN.md Sec. 19) against
// the scalar coroutine interpreter on the unit of work the Tab. 5 campaign
// performs millions of times: one full application execution under the
// tuned sys-str+ environment. One arm per lowered kernel code base —
// sdk-red (regular reduction), cub-scan (decoupled-lookback polls),
// cbe-dot (spin locks), cbe-ht (data-dependent addressing) — so each
// control-flow shape the compiler lowers is measured separately.
//
// Hard failure conditions:
//  * any arm's per-run verdict sequence diverges between scalar and
//    batched execution (a determinism-contract violation), or
//  * a baseline JSON is supplied (--baseline=FILE or GPUWMM_BENCH_BASELINE)
//    and the aggregate scalar throughput regressed more than 2% against
//    its committed scalar_runs_per_sec — the guard that keeps the shared
//    scalar engine honest while the batched engine carries the speedup.
//    The committed reference lives in bench/baselines/ (same-machine
//    comparisons only; see its README).
//
//===----------------------------------------------------------------------===//

#include "apps/AppCompile.h"
#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gpuwmm;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts "scalar_runs_per_sec": <number> from a baseline JSON (no JSON
/// dependency; the bench writes the field itself, so the shape is known).
double baselineScalarRunsPerSec(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "error: cannot read baseline '%s'\n", Path.c_str());
    return -1.0;
  }
  std::ostringstream Text;
  Text << IS.rdbuf();
  const std::string Key = "\"scalar_runs_per_sec\": ";
  const size_t At = Text.str().find(Key);
  if (At == std::string::npos) {
    std::fprintf(stderr, "error: no scalar_runs_per_sec in '%s'\n",
                 Path.c_str());
    return -1.0;
  }
  return std::strtod(Text.str().c_str() + At + Key.size(), nullptr);
}

/// One application's A/B: scalar runApplicationOnce loop vs
/// runApplicationBatch, per-run verdicts compared bit for bit.
struct ArmResult {
  double ScalarSeconds = 0;
  double BatchedSeconds = 0;
  bool Identical = false;
  double speedup() const {
    return BatchedSeconds > 0.0 ? ScalarSeconds / BatchedSeconds : 0.0;
  }
};

ArmResult runArm(apps::AppKind App, const sim::ChipProfile &Chip,
                 const stress::Environment &Env,
                 const stress::TunedStressParams &Tuned, unsigned Runs,
                 uint64_t Seed) {
  ArmResult R;
  std::vector<apps::AppVerdict> ScalarV(Runs), BatchedV(Runs);
  std::vector<uint64_t> Seeds(Runs);
  for (unsigned I = 0; I != Runs; ++I)
    Seeds[I] = Rng::deriveStream(Seed, I);

  // Interleave the engines in slices so clock-speed drift (thermal
  // throttling, noisy neighbours) hits both arms equally instead of
  // whichever ran second. Each engine owns one recycled context and
  // consumes the shared seed stream contiguously, so per-run verdicts
  // stay comparable index by index.
  sim::ExecutionContext ScalarCtx, BatchedCtx;
  const unsigned SliceRuns = std::max(1u, Runs / 20);
  for (unsigned Done = 0; Done != Runs;) {
    const unsigned N = std::min(SliceRuns, Runs - Done);
    double T = now();
    for (unsigned I = Done; I != Done + N; ++I)
      ScalarV[I] = apps::runApplicationOnce(ScalarCtx, App, Chip, Env,
                                            Tuned, nullptr, Seeds[I]);
    R.ScalarSeconds += now() - T;
    T = now();
    apps::runApplicationBatch(BatchedCtx, App, Chip, Env, Tuned, nullptr,
                              Seeds.data() + Done, BatchedV.data() + Done,
                              N);
    R.BatchedSeconds += now() - T;
    Done += N;
  }

  R.Identical = ScalarV == BatchedV;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  const unsigned Runs = scaledCount(2000);
  const uint64_t Seed = 42;
  const stress::Environment Env{stress::StressKind::Sys, true};
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const apps::AppKind Apps[] = {apps::AppKind::SdkRed,
                                apps::AppKind::CubScan,
                                apps::AppKind::CbeDot, apps::AppKind::CbeHt};

  std::printf("app batch: %u sys-str+ executions per kernel and engine, "
              "seed %llu, K=%u\n\n",
              Runs, static_cast<unsigned long long>(Seed),
              sim::defaultBatchWidth());

  // Warm both engines (plan compilation, context slabs) so no arm pays
  // first-run allocation.
  for (apps::AppKind App : Apps)
    (void)runArm(App, Chip, Env, Tuned, std::max(8u, Runs / 50), Seed + 1);

  Table T({"app", "scalar s", "batched s", "scalar/s", "batched/s",
           "speedup", "identical"});
  double ScalarTotal = 0, BatchedTotal = 0;
  bool Identical = true;
  double BestSpeedup = 0;
  std::string Json;
  for (apps::AppKind App : Apps) {
    const ArmResult R = runArm(App, Chip, Env, Tuned, Runs, Seed);
    ScalarTotal += R.ScalarSeconds;
    BatchedTotal += R.BatchedSeconds;
    Identical = Identical && R.Identical;
    BestSpeedup = std::max(BestSpeedup, R.speedup());
    T.addRow({apps::appName(App), formatDouble(R.ScalarSeconds, 3),
              formatDouble(R.BatchedSeconds, 3),
              formatDouble(Runs / R.ScalarSeconds, 0),
              formatDouble(Runs / R.BatchedSeconds, 0),
              formatDouble(R.speedup(), 2) + "x",
              R.Identical ? "yes" : "NO"});
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "\"%s_speedup\": %.2f, ",
                  apps::appName(App), R.speedup());
    for (char *C = Buf; *C; ++C)
      if (*C == '-')
        *C = '_';
    Json += Buf;
  }
  T.print(std::cout);

  const double ScalarRate = 4.0 * Runs / ScalarTotal;
  const double BatchedRate = 4.0 * Runs / BatchedTotal;

  // Optional committed-baseline guard for the aggregate scalar path (>2%
  // regression fails). Same-machine comparisons only — never enabled
  // blindly in CI.
  bool BaselineOk = true;
  std::string BaselinePath = Opts.getString("baseline", "");
  if (BaselinePath.empty())
    if (const char *E = std::getenv("GPUWMM_BENCH_BASELINE"))
      BaselinePath = E;
  if (!BaselinePath.empty()) {
    const double Reference = baselineScalarRunsPerSec(BaselinePath);
    if (Reference <= 0.0) {
      BaselineOk = false;
    } else {
      const double Ratio = ScalarRate / Reference;
      BaselineOk = Ratio >= 0.98;
      std::printf("\nscalar path vs baseline %s: %.0f vs %.0f runs/s "
                  "(%+.1f%%) -> %s\n",
                  BaselinePath.c_str(), ScalarRate, Reference,
                  100.0 * (Ratio - 1.0),
                  BaselineOk ? "ok" : "REGRESSION (>2%)");
    }
  }

  std::printf("\n{\"bench\": \"app_batch\", \"runs\": %u, "
              "\"scalar_runs_per_sec\": %.0f, "
              "\"batched_runs_per_sec\": %.0f, %s\"best_speedup\": %.2f, "
              "\"identical\": %s}\n",
              Runs, ScalarRate, BatchedRate, Json.c_str(), BestSpeedup,
              Identical ? "true" : "false");

  // Identity is the determinism contract; the baseline guard is the
  // scalar-path-unharmed contract. Speedups are reported, not gated:
  // machines differ, but divergence and scalar regressions are bugs
  // everywhere.
  return Identical && BaselineOk ? 0 : 1;
}
