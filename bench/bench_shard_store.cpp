//===- bench/bench_shard_store.cpp - Campaign fabric storage costs -----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Measures the sharded campaign fabric's storage overhead (DESIGN.md
// Sec. 16), answering "what does durability cost per cell?":
//
//  * append: fsync'd record appends per second — the per-cell overhead a
//    sharded worker pays over the monolithic campaign. One cell runs for
//    seconds, so thousands of appends per second means the fabric's
//    durability tax is noise.
//  * merge: loading + merging a full-grid-sized synthetic store (the
//    paper's 560 app cells, striped across 4 shards) back into a report.
//
// The hard failure condition: a real sharded run of a small grid must
// merge to bytes identical to the monolithic report — the fabric's core
// contract, enforced here so the bench job also guards it.
//
//===----------------------------------------------------------------------===//

#include "harness/Campaign.h"
#include "harness/Merge.h"
#include "harness/ShardStore.h"
#include "harness/WorkList.h"
#include "support/Options.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>

using namespace gpuwmm;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TempDir {
  std::filesystem::path Path;
  explicit TempDir(const char *Name) : Path(Name) {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  ~TempDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

} // namespace

int main() {
  // --- Arm A: durable append throughput ------------------------------------
  // The paper's full grid as the manifest; synthetic but seed-correct
  // records (merge validates runs + derived seed, not counts).
  harness::CampaignConfig Full = harness::CampaignConfig::full();
  const auto Work = harness::buildWorkList(Full);
  const unsigned Appends =
      std::min<unsigned>(scaledCount(2000), unsigned(4 * Work.size()));

  TempDir AppendDir("bench-shard-append.tmp");
  std::string Err;
  auto Store = harness::ShardStore::open(AppendDir.str(), Full, &Err);
  if (!Store) {
    std::fprintf(stderr, "FAILED: %s\n", Err.c_str());
    return 1;
  }
  const auto RecordFor = [&](size_t Item) {
    harness::ShardRecord R;
    const auto &W = Work[Item % Work.size()];
    const std::string Key = harness::workItemKey(Full, W);
    R.Chip = Full.Chips[W.ChipIdx]->ShortName;
    R.Env = Full.Envs[W.EnvIdx].name();
    R.App = apps::appName(Full.Apps[W.AppIdx]);
    R.Seed = harness::workItemSeed(Full, W);
    R.Runs = Full.Runs;
    R.Errors = unsigned(Item % 7);
    R.Timeouts = unsigned(Item % 3);
    return R;
  };
  const double AppendStart = now();
  for (unsigned I = 0; I != Appends; ++I)
    if (!Store->append(RecordFor(I % Work.size()), &Err)) {
      std::fprintf(stderr, "FAILED: append: %s\n", Err.c_str());
      return 1;
    }
  const double AppendSecs = now() - AppendStart;
  std::printf("append: %u fsync'd records in %.3fs (%.0f records/s)\n",
              Appends, AppendSecs, Appends / AppendSecs);

  // --- Arm B: full-grid store load + merge ---------------------------------
  TempDir MergeDir("bench-shard-merge.tmp");
  for (unsigned Shard = 0; Shard != 4; ++Shard) {
    auto Worker = harness::ShardStore::open(MergeDir.str(), Full, &Err);
    if (!Worker) {
      std::fprintf(stderr, "FAILED: %s\n", Err.c_str());
      return 1;
    }
    for (size_t Item = Shard; Item < Work.size(); Item += 4)
      if (!Worker->append(RecordFor(Item), &Err)) {
        std::fprintf(stderr, "FAILED: append: %s\n", Err.c_str());
        return 1;
      }
  }
  const double MergeStart = now();
  harness::CampaignReport Synthetic;
  harness::MergeStats Stats;
  if (!harness::mergeCampaignShards(MergeDir.str(), Synthetic, Stats,
                                    &Err)) {
    std::fprintf(stderr, "FAILED: merge: %s\n", Err.c_str());
    return 1;
  }
  const double MergeSecs = now() - MergeStart;
  std::printf("merge: %zu cells from %u shards in %.3fs (%.0f cells/s)\n",
              Stats.CellsMerged, Stats.ShardFiles, MergeSecs,
              Stats.CellsMerged / MergeSecs);

  // --- Hard failure condition: sharded == monolithic, byte for byte --------
  harness::CampaignConfig Small;
  Small.Chips = {sim::ChipProfile::lookup("titan")};
  Small.Envs = {{stress::StressKind::None, false},
                {stress::StressKind::Sys, true}};
  Small.Apps = {apps::AppKind::CbeDot, apps::AppKind::CbeHt};
  Small.Runs = scaledCount(20);
  Small.Seed = 42;
  std::ostringstream Mono;
  harness::writeCampaignJson(harness::runCampaign(Small), Mono);

  TempDir FabricDir("bench-shard-fabric.tmp");
  harness::FabricOptions Opts;
  Opts.Dir = FabricDir.str();
  harness::FabricOutcome Out;
  if (!harness::runCampaignFabric(Small, Opts, nullptr, Out, &Err)) {
    std::fprintf(stderr, "FAILED: fabric: %s\n", Err.c_str());
    return 1;
  }
  harness::CampaignReport Merged;
  if (!harness::mergeCampaignShards(FabricDir.str(), Merged, Stats, &Err)) {
    std::fprintf(stderr, "FAILED: merge: %s\n", Err.c_str());
    return 1;
  }
  std::ostringstream Sharded;
  harness::writeCampaignJson(Merged, Sharded);
  if (Mono.str() != Sharded.str()) {
    std::fprintf(stderr, "FAILED: sharded report differs from the "
                         "monolithic report\n");
    return 1;
  }
  std::printf("contract: sharded report == monolithic report "
              "(%u cells, %u runs)\n",
              Out.Completed, Small.Runs);
  return 0;
}
