//===- bench/bench_access_sequences.cpp - Paper Tab. 3 ------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Tab. 3: the ranking of all 63 access sequences on the GTX
// Titan — the top and bottom three per litmus test, plus the selected
// (Pareto-optimal, tie-broken) sequence and its per-test ranks. The shape
// to check: orders-of-magnitude spread between the best and worst
// sequences, with all-store sequences at the bottom, and a winner that
// mixes loads and stores without being #1 on any single test.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "support/Table.h"
#include "tuning/SequenceTuner.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;
using litmus::AllLitmusKinds;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const std::string ChipName = Opts.getString("chip", "titan");
  const unsigned C =
      static_cast<unsigned>(Opts.getInt("executions", scaledCount(40)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 29));

  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(ChipName);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", ChipName.c_str());
    return 1;
  }

  std::printf("== Table 3: access-sequence ranking for %s ==\n\n",
              Chip->Name);

  tuning::SequenceTuner Tuner(*Chip, Seed);
  tuning::SequenceTuner::Config Cfg;
  Cfg.Executions = C;
  const auto Ranked = Tuner.rankAll(Chip->PatchSizeWords, Cfg);
  const auto Best = tuning::SequenceTuner::selectBest(Ranked);

  for (unsigned K = 0; K != 3; ++K) {
    const auto Sorted = tuning::SequenceTuner::sortedByKind(Ranked, K);
    std::printf("-- %s --\n", litmusName(AllLitmusKinds[K]));
    Table T({"rank", "sigma", "score"});
    for (size_t I = 0; I != 3; ++I)
      T.addRow({std::to_string(I + 1), Sorted[I].Seq.str(),
                std::to_string(Sorted[I].Scores[K])});
    // The selected sequence's rank on this test.
    for (size_t I = 0; I != Sorted.size(); ++I) {
      if (Sorted[I].Seq == Best) {
        T.addRow({std::to_string(I + 1) + " (selected)", Best.str(),
                  std::to_string(Sorted[I].Scores[K])});
        break;
      }
    }
    for (size_t I = Sorted.size() - 3; I != Sorted.size(); ++I)
      T.addRow({std::to_string(I + 1), Sorted[I].Seq.str(),
                std::to_string(Sorted[I].Scores[K])});
    T.print(std::cout);
    std::printf("\n");
  }

  std::printf("selected sequence (Pareto + 2-of-3 tie-break): \"%s\"\n"
              "(paper's Titan winner: \"ld st2 ld\", ranked 17th on every "
              "individual test, ~1000x above the all-store bottom ranks)\n",
              Best.str().c_str());
  return 0;
}
