//===- bench/bench_hunt_throughput.cpp - Hunt pipeline throughput ------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Measures the `gpuwmm hunt` pipeline (DESIGN.md Sec. 18) in programs/s:
//
//  * fuzz-batch: the hunt's fuzz stage alone — fuzzBatch on the compiled
//    batch engine, the throughput every hunt round pays per generated
//    program. This is the guarded arm: with a baseline JSON supplied
//    (--baseline=FILE or GPUWMM_BENCH_BASELINE) a fuzz_programs_per_sec
//    regression beyond 2% hard-fails, keeping the mining loop's dominant
//    stage honest. The committed reference lives in bench/baselines/
//    (same-machine comparisons only; see its README).
//  * full loop: an in-memory bounded hunt — fuzz, shrink, dedupe, harden
//    and oracle-verify end to end. Reported, not baseline-gated (entry
//    yield makes the rate config-sensitive); the machine-independent gate
//    is that the hunt succeeds and its hardened corpus is oracle-clean.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramFuzzer.h"
#include "hunt/Hunt.h"
#include "sim/ChipProfile.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace gpuwmm;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts "fuzz_programs_per_sec": <number> from a baseline JSON (no
/// JSON dependency; the bench writes the field itself).
double baselineFuzzProgramsPerSec(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "error: cannot read baseline '%s'\n", Path.c_str());
    return -1.0;
  }
  std::ostringstream Text;
  Text << IS.rdbuf();
  const std::string Key = "\"fuzz_programs_per_sec\": ";
  const size_t At = Text.str().find(Key);
  if (At == std::string::npos) {
    std::fprintf(stderr, "error: no fuzz_programs_per_sec in '%s'\n",
                 Path.c_str());
    return -1.0;
  }
  return std::strtod(Text.str().c_str() + At + Key.size(), nullptr);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const auto &Chip = *sim::ChipProfile::lookup("titan");

  // --- Guarded arm: the fuzz stage at hunt-default program shape ----------
  fuzz::BatchConfig BC;
  BC.Programs = scaledCount(400, 40);
  BC.RunsPerProgram = 40;

  // Warm the thread-local context pool so the timed batch pays no
  // first-run allocation.
  {
    fuzz::BatchConfig Warm = BC;
    Warm.Programs = 10;
    (void)fuzz::fuzzBatch(Chip, Warm, 7);
  }

  double T = now();
  const auto Batch = fuzz::fuzzBatch(Chip, BC, 7);
  const double FuzzSeconds = now() - T;
  unsigned WeakFound = 0;
  for (const fuzz::BatchEntry &E : Batch)
    if (E.R.WeakOutcomes)
      ++WeakFound;
  const double FuzzRate = BC.Programs / FuzzSeconds;

  // --- Reported arm: the complete closed loop, in-memory corpus ----------
  hunt::HuntConfig Cfg;
  Cfg.Chip = &Chip;
  Cfg.Rounds = 3;
  Cfg.Fuzz.Programs = scaledCount(20, 4);
  Cfg.Fuzz.RunsPerProgram = 40;
  Cfg.Distance = 2 * Chip.PatchSizeWords;
  Cfg.ShrinkRuns = scaledCount(200, 40);
  Cfg.HardenRuns = 32;
  Cfg.StableRuns = scaledCount(300, 60);
  Cfg.VerifyRuns = scaledCount(200, 40);
  Cfg.Seed = 7;

  hunt::HuntReport Report;
  std::string Err;
  T = now();
  const bool HuntOk = hunt::runHunt(Cfg, nullptr, Report, &Err);
  const double HuntSeconds = now() - T;
  if (!HuntOk)
    std::fprintf(stderr, "error: hunt failed: %s\n", Err.c_str());
  const bool Clean = HuntOk && Report.clean();
  const double HuntRate =
      HuntSeconds > 0.0 ? Report.ProgramsFuzzed / HuntSeconds : 0.0;

  std::printf("hunt throughput: %u-program fuzz batch, %u-round full loop, "
              "seed 7\n\n",
              BC.Programs, Cfg.Rounds);
  Table Tab({"stage", "programs", "seconds", "programs/s", "notes"});
  Tab.addRow({"fuzz-batch", std::to_string(BC.Programs),
              formatDouble(FuzzSeconds, 3), formatDouble(FuzzRate, 0),
              std::to_string(WeakFound) + " weak"});
  Tab.addRow({"full loop",
              std::to_string(static_cast<unsigned>(Report.ProgramsFuzzed)),
              formatDouble(HuntSeconds, 3), formatDouble(HuntRate, 0),
              std::to_string(Report.Entries.size()) + " entries, " +
                  (Clean ? "clean" : "NOT CLEAN")});
  Tab.print(std::cout);

  // Optional committed-baseline guard for the fuzz stage (>2% regression
  // fails). Same-machine comparisons only — never enabled blindly in CI.
  bool BaselineOk = true;
  std::string BaselinePath = Opts.getString("baseline", "");
  if (BaselinePath.empty())
    if (const char *Env = std::getenv("GPUWMM_BENCH_BASELINE"))
      BaselinePath = Env;
  if (!BaselinePath.empty()) {
    const double Reference = baselineFuzzProgramsPerSec(BaselinePath);
    if (Reference <= 0.0) {
      BaselineOk = false;
    } else {
      const double Ratio = FuzzRate / Reference;
      BaselineOk = Ratio >= 0.98;
      std::printf("\nfuzz batch vs baseline %s: %.0f vs %.0f programs/s "
                  "(%+.1f%%) -> %s\n",
                  BaselinePath.c_str(), FuzzRate, Reference,
                  100.0 * (Ratio - 1.0),
                  BaselineOk ? "ok" : "REGRESSION (>2%)");
    }
  }

  std::printf("\n{\"bench\": \"hunt_throughput\", \"fuzz_programs\": %u, "
              "\"fuzz_programs_per_sec\": %.0f, \"fuzz_weak\": %u, "
              "\"hunt_programs\": %llu, \"hunt_programs_per_sec\": %.0f, "
              "\"hunt_entries\": %zu, \"clean\": %s}\n",
              BC.Programs, FuzzRate, WeakFound,
              static_cast<unsigned long long>(Report.ProgramsFuzzed),
              HuntRate, Report.Entries.size(), Clean ? "true" : "false");

  // The clean corpus is the correctness contract; the baseline guard is
  // the fuzz-stage-unharmed contract. Full-loop rate is reported only.
  return Clean && BaselineOk ? 0 : 1;
}
