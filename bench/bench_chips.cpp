//===- bench/bench_chips.cpp - Paper Tab. 1 -----------------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Tab. 1: the seven GPUs under study, with the simulator-model
// parameters standing in for each physical chip.
//
//===----------------------------------------------------------------------===//

#include "sim/ChipProfile.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace gpuwmm;

int main() {
  std::printf("== Table 1: the seven Nvidia GPUs that we study (simulated "
              "profiles) ==\n\n");
  Table T({"chip", "architecture", "short name", "released", "patch (w)",
           "banks", "SMs", "drain base", "sensitivity", "power query"});
  size_t Count = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(Count);
  for (size_t I = 0; I != Count; ++I) {
    const sim::ChipProfile &C = Chips[I];
    T.addRow({C.Name, archName(C.Arch), C.ShortName,
              std::to_string(C.ReleaseYear),
              std::to_string(C.PatchSizeWords), std::to_string(C.NumBanks),
              std::to_string(C.NumSMs), formatDouble(C.DrainBase, 2),
              formatDouble(C.Sensitivity, 2),
              C.SupportsPowerQuery ? "yes (NVML)" : "no"});
  }
  T.print(std::cout);
  return 0;
}
