//===- bench/bench_environments.cpp - Paper Tab. 5 ----------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Tab. 5: the effectiveness of the eight testing environments
// on every chip. Each cell is "a/b": errors were observed for b of the ten
// applications, and for a of them the environment was effective (errors in
// more than 5% of executions). The paper runs each cell for one hour; we
// run a configurable number of executions per application.
//
//===----------------------------------------------------------------------===//

#include "harness/EnvironmentRunner.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(60)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 13));
  const std::string OnlyChip = Opts.getString("chip", "");

  std::printf("== Table 5: effectiveness of the eight testing environments "
              "==\n");
  std::printf("(a/b: errors observed for b of 10 applications, effective "
              "(>5%% of %u runs) for a; * marks the most capable "
              "environment per chip)\n\n",
              Runs);

  std::vector<std::string> Headers{"chip"};
  for (const auto &Env : stress::Environment::all())
    Headers.push_back(Env.name());
  Table T(Headers);

  size_t NumChips = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(NumChips);
  for (size_t CI = 0; CI != NumChips; ++CI) {
    const sim::ChipProfile &Chip = Chips[CI];
    if (!OnlyChip.empty() && OnlyChip != Chip.ShortName)
      continue;
    const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);

    std::vector<harness::EnvironmentSummary> Summaries;
    unsigned BestScore = 0;
    for (const auto &Env : stress::Environment::all()) {
      const auto S = harness::runEnvironmentSummary(
          Chip, Env, Tuned, Runs, Rng::deriveStream(Seed, CI));
      BestScore = std::max(BestScore,
                           S.AppsEffective * 100 + S.AppsWithErrors);
      Summaries.push_back(S);
    }

    std::vector<std::string> Row{Chip.ShortName};
    for (const auto &S : Summaries) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%u/%u%s", S.AppsEffective,
                    S.AppsWithErrors,
                    S.AppsEffective * 100 + S.AppsWithErrors == BestScore
                        ? "*"
                        : "");
      Row.push_back(Buf);
    }
    T.addRow(Row);
  }
  T.print(std::cout);
  std::printf("\nShape to check against the paper's Tab. 5: sys-str "
              "environments dominate every chip (observing errors in ~8 of "
              "10 applications — all but the fenced sdk-red and cub-scan); "
              "no-str shows errors almost nowhere; rand-str and cache-str "
              "sit far below sys-str.\n");
  return 0;
}
