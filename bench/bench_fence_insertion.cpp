//===- bench/bench_fence_insertion.cpp - Paper Tab. 6 -------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Tab. 6: empirical fence insertion on the seven fenceless
// applications, across all chips. Reports the initial fence count (one
// after every instrumented access), the reduced count on the GTX Titan,
// how many other chips converge to the same fence set as Titan, and the
// min/median/max reduction cost.
//
//===----------------------------------------------------------------------===//

#include "harden/FenceInsertion.h"
#include "support/Options.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

namespace {

const apps::AppKind FencelessApps[] = {
    apps::AppKind::CbeHt,     apps::AppKind::CbeDot,
    apps::AppKind::CtOctree,  apps::AppKind::TpoTm,
    apps::AppKind::SdkRedNf,  apps::AppKind::CubScanNf,
    apps::AppKind::LsBhNf};

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 17));
  const unsigned StableRuns = static_cast<unsigned>(
      Opts.getInt("stable-runs", scaledCount(300)));
  const unsigned InitialIters = static_cast<unsigned>(
      Opts.getInt("iterations", 32));
  const std::string OnlyApp = Opts.getString("app", "");
  const bool Verbose = Opts.has("verbose");

  std::printf("== Table 6: empirical fence insertion results ==\n");
  std::printf("(environment: sys-str+; stability budget %u runs, initial "
              "I=%u)\n\n",
              StableRuns, InitialIters);

  size_t NumChips = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(NumChips);

  Table T({"app", "init. fences", "red. (titan)", "titan fence sites",
           "agreeing chips", "min (s)", "med (s)", "max (s)"});

  for (apps::AppKind App : FencelessApps) {
    if (!OnlyApp.empty() && OnlyApp != apps::appName(App))
      continue;
    const unsigned NumSites = apps::appNumSites(App);
    const sim::FencePolicy Initial = sim::FencePolicy::all(NumSites);

    sim::FencePolicy TitanFences;
    std::vector<double> Times;
    unsigned Agreeing = 0;

    // Titan first (the paper's reference chip for Tab. 6), then the rest.
    std::vector<const sim::ChipProfile *> Order;
    Order.push_back(sim::ChipProfile::lookup("titan"));
    for (size_t I = 0; I != NumChips; ++I)
      if (std::string_view(Chips[I].ShortName) != "titan")
        Order.push_back(&Chips[I]);

    for (const sim::ChipProfile *Chip : Order) {
      harden::AppCheckOracle Oracle(App, *Chip,
                                    Rng::deriveStream(Seed, static_cast<uint64_t>(App)),
                                    StableRuns);
      harden::InsertionConfig Cfg;
      Cfg.InitialIterations = InitialIters;
      const auto R =
          harden::empiricalFenceInsertion(Initial, Oracle, Cfg);
      Times.push_back(R.WallSeconds);
      if (std::string_view(Chip->ShortName) == "titan") {
        TitanFences = R.Fences;
      } else if (R.Fences == TitanFences) {
        ++Agreeing;
      }
      if (Verbose) {
        std::printf("  %s/%s: %u fences {", apps::appName(App),
                    Chip->ShortName, R.Fences.count());
        auto AppInst = apps::makeApp(App);
        for (unsigned S : R.Fences.sites())
          std::printf(" %s;", AppInst->siteName(S));
        std::printf(" } stable=%d rounds=%u\n", R.Stable, R.Rounds);
      }
    }

    std::string SiteList;
    auto AppInst = apps::makeApp(App);
    for (unsigned S : TitanFences.sites()) {
      if (!SiteList.empty())
        SiteList += "; ";
      SiteList += AppInst->siteName(S);
    }

    T.addRow({apps::appName(App), std::to_string(NumSites),
              std::to_string(TitanFences.count()), SiteList,
              std::to_string(Agreeing) + "/6",
              formatDouble(quantile(Times, 0.0), 2),
              formatDouble(median(Times), 2),
              formatDouble(quantile(Times, 1.0), 2)});
  }
  T.print(std::cout);
  std::printf(
      "\nPaper (Tab. 6) reduced counts: cbe-ht 1, cbe-dot 1, ct-octree 1, "
      "tpo-tm 1, sdk-red-nf 1, cub-scan-nf 2, ls-bh-nf 4.\n"
      "Site counts differ from the paper's because instrumentation "
      "granularity differs; the shape to check is: most applications "
      "reduce to a single fence at the store the hand analyses blame, "
      "cub-scan-nf reduces to exactly its two provided fences, and chips "
      "mostly agree.\n");
  return 0;
}
