//===- bench/bench_calibration.cpp - Model calibration diagnostics -----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Diagnostic bench: prints, for each chip, the quantities the weak-memory
// model is calibrated against — native weak-behaviour rates (must be near
// zero, as on real hardware), direct-hit stressed rates (must be large),
// wrong-bank stressed rates (must be near native), and the spread response
// curve. Useful when porting the model to new chip profiles.
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;
using litmus::AllLitmusKinds;
using litmus::LitmusInstance;
using litmus::LitmusRunner;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const unsigned C =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(1500)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 5));
  const std::string Only = Opts.getString("chip", "");
  const unsigned MaxSpread =
      static_cast<unsigned>(Opts.getInt("max-spread", 5));

  const auto PatchSeq = stress::AccessSequence::parse("st ld");
  const auto AltSeq = stress::AccessSequence::parse("ld st ld st");

  size_t NumChips = 0;
  const sim::ChipProfile *Chips = sim::ChipProfile::all(NumChips);
  for (size_t I = 0; I != NumChips; ++I) {
    const sim::ChipProfile &Chip = Chips[I];
    if (!Only.empty() && Only != Chip.ShortName)
      continue;
    const unsigned P = Chip.PatchSizeWords;

    std::printf("== %s (P=%u, banks=%u, sens=%.2f) ==\n", Chip.ShortName, P,
                Chip.NumBanks, Chip.Sensitivity);
    Table T({"test", "native%", "hit%", "miss%", "m=1", "m=2", "m=3", "m=4",
             "m=5"});
    for (size_t K = 0; K != AllLitmusKinds.size(); ++K) {
      LitmusRunner Runner(Chip, Rng::deriveStream(Seed, K));
      const LitmusInstance Inst{AllLitmusKinds[K], 2 * P};

      const double Native =
          100.0 * Runner.countWeak(Inst, LitmusRunner::MicroStress::none(),
                                   C) / C;
      // Direct hit: find the most effective single location in the first
      // NumBanks patches (one maps to bank(x)).
      unsigned BestHit = 0;
      unsigned WorstHit = ~0u;
      for (unsigned R = 0; R != Chip.NumBanks; ++R) {
        const unsigned W = Runner.countWeak(
            Inst, LitmusRunner::MicroStress::at(PatchSeq, R * P), C / 4);
        BestHit = std::max(BestHit, W);
        WorstHit = std::min(WorstHit, W);
      }
      std::vector<std::string> Row{
          litmusName(AllLitmusKinds[K]), formatDouble(Native, 2),
          formatDouble(100.0 * BestHit / (C / 4), 1),
          formatDouble(100.0 * WorstHit / (C / 4), 1)};

      // Spread curve with the canonical alternating sequence over 16
      // regions (score = weak count over C runs, random subsets).
      Rng SubsetRng(Rng::deriveStream(Seed, 100 + K));
      for (unsigned M = 1; M <= MaxSpread; ++M) {
        unsigned Score = 0;
        for (unsigned Run = 0; Run != C / 2; ++Run) {
          std::vector<unsigned> Offs;
          for (unsigned Region : SubsetRng.sampleDistinct(M, 16))
            Offs.push_back(Region * P);
          Score += Runner.countWeak(
              Inst, LitmusRunner::MicroStress::atAll(AltSeq, Offs), 1);
        }
        Row.push_back(std::to_string(Score));
      }
      T.addRow(Row);
    }
    T.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
