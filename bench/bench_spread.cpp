//===- bench/bench_spread.cpp - Paper Fig. 4 ---------------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Fig. 4: spread-finding curves (score vs number of
// simultaneously stressed regions) for the GTX 980 and Tesla K20 per
// litmus test. The paper's characteristic shape: a peak at spread 2 with a
// decaying tail (U-shaped prominence on 980, shallower on K20).
//
//===----------------------------------------------------------------------===//

#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"
#include "tuning/SpreadTuner.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

static void runChip(const std::string &Name, unsigned MaxSpread,
                    unsigned Executions, uint64_t Seed) {
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(Name);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", Name.c_str());
    return;
  }
  const auto Tuned = stress::TunedStressParams::paperDefaults(*Chip);

  tuning::SpreadTuner Tuner(*Chip, Seed);
  tuning::SpreadTuner::Config Cfg;
  Cfg.MaxSpread = MaxSpread;
  Cfg.Executions = Executions;
  const auto Ranked =
      Tuner.rankAll(Tuned.PatchWords, Tuned.Seq, Cfg);
  const unsigned Best = tuning::SpreadTuner::selectBest(Ranked);

  std::printf("-- %s (sequence \"%s\", patch %u) --\n", Chip->Name,
              Tuned.Seq.str().c_str(), Tuned.PatchWords);
  Table T({"spread", "MP score", "LB score", "SB score"});
  for (const auto &S : Ranked)
    T.addRow({std::to_string(S.Spread), std::to_string(S.Scores[0]),
              std::to_string(S.Scores[1]), std::to_string(S.Scores[2])});
  T.print(std::cout);
  std::printf("maximally effective spread: %u (paper: 2)\n\n", Best);
}

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const unsigned MaxSpread =
      static_cast<unsigned>(Opts.getInt("max-spread", 16));
  const unsigned Executions = static_cast<unsigned>(
      Opts.getInt("executions", scaledCount(60)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 11));

  std::printf("== Figure 4: spread finding ==\n\n");
  const std::string Only = Opts.getString("chip", "");
  if (!Only.empty()) {
    runChip(Only, MaxSpread, Executions, Seed);
    return 0;
  }
  runChip("980", MaxSpread, Executions, Seed);
  runChip("k20", MaxSpread, Executions, Rng::deriveStream(Seed, 1));
  return 0;
}
