//===- bench/bench_patch_finding.cpp - Paper Fig. 3 ---------------------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Regenerates Fig. 3: patch-finding histograms (weak behaviours per
// stressed scratchpad location) for the GTX Titan, Tesla C2075 and GTX 980
// at three distances each, rendered as ASCII bar plots, plus the derived
// critical patch size. The shapes to check: no weak behaviour when the
// communication locations are within one patch (small d); patch-width bars
// whose positions shift as d crosses patch boundaries; patch size 32 on
// Kepler vs 64 on Fermi/Maxwell.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "tuning/PatchFinder.h"

#include <cstdio>

using namespace gpuwmm;
using litmus::AllLitmusKinds;

namespace {

void plotHistogram(const std::vector<unsigned> &Hist, unsigned MaxCount,
                   unsigned Buckets = 64) {
  // Collapse locations into buckets and print a height-4 bar chart.
  const unsigned PerBucket =
      std::max<unsigned>(1, static_cast<unsigned>(Hist.size()) / Buckets);
  std::vector<unsigned> Collapsed;
  for (size_t I = 0; I < Hist.size(); I += PerBucket) {
    unsigned Sum = 0;
    for (size_t J = I; J != std::min(Hist.size(), I + PerBucket); ++J)
      Sum = std::max(Sum, Hist[J]);
    Collapsed.push_back(Sum);
  }
  const char Levels[] = " .:|#";
  std::printf("    |");
  for (unsigned V : Collapsed) {
    unsigned L = 0;
    if (MaxCount != 0 && V != 0)
      L = 1 + (4 - 1) * std::min(V, MaxCount) / MaxCount;
    std::putchar(Levels[L]);
  }
  std::printf("|\n");
}

void runChip(const char *Name, const std::vector<unsigned> &Distances,
             unsigned C, uint64_t Seed) {
  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(Name);
  if (!Chip)
    return;

  tuning::PatchFinder PF(*Chip, Seed);
  tuning::PatchFinder::Config Cfg;
  Cfg.NumLocations = 256;
  Cfg.Distances = Distances;
  Cfg.Executions = C;
  const tuning::PatchScan Scan = PF.scan(Cfg);
  // The patch-size decision uses the full default distance sweep (as the
  // tuning pipeline does); the three distances above are plotted only.
  tuning::PatchFinder::Config FullCfg = Cfg;
  FullCfg.Distances = tuning::PatchFinder::defaultDistances();
  const auto Decision =
      tuning::PatchFinder::decide(PF.scan(FullCfg), Cfg.Eps);

  std::printf("-- %s --\n", Chip->Name);
  for (size_t K = 0; K != AllLitmusKinds.size(); ++K) {
    if (AllLitmusKinds[K] == litmus::LitmusKind::SB)
      continue; // The paper omits SB from Fig. 3 (similar to LB).
    for (size_t D = 0; D != Scan.Distances.size(); ++D) {
      unsigned MaxCount = 0;
      for (unsigned V : Scan.Hist[K][D])
        MaxCount = std::max(MaxCount, V);
      std::printf("  %s d=%-3u (max %u weak / %u runs per location)\n",
                  litmusName(AllLitmusKinds[K]), Scan.Distances[D],
                  MaxCount, C);
      plotHistogram(Scan.Hist[K][D], MaxCount);
    }
  }
  std::string Derived = "(none)";
  if (Decision.CriticalPatchSize)
    Derived = std::to_string(*Decision.CriticalPatchSize);
  else if (Decision.MajorityPatchSize)
    Derived = std::to_string(*Decision.MajorityPatchSize) + " (majority)";
  std::printf("  per-test mode patch sizes: MP=%u LB=%u SB=%u -> critical "
              "patch size %s (paper: %u)\n\n",
              Decision.PerKindMode[0], Decision.PerKindMode[1],
              Decision.PerKindMode[2], Derived.c_str(),
              Chip->PatchSizeWords);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const unsigned C =
      static_cast<unsigned>(Opts.getInt("executions", scaledCount(60)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 3));

  std::printf("== Figure 3: patch finding (x axis: stressed scratchpad "
              "location 0..255, bar height: weak behaviours) ==\n\n");
  // The paper plots d in {0, 32, 64} for Titan and {0, 64, 128} for
  // C2075/980.
  runChip("titan", {0, 32, 64}, C, Seed);
  runChip("c2075", {0, 64, 128}, C, Rng::deriveStream(Seed, 1));
  runChip("980", {0, 64, 128}, C, Rng::deriveStream(Seed, 2));
  return 0;
}
