//===- bench/bench_trace_overhead.cpp - Trace seam overhead A/B --------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// A/B-measures the event-trace seam (DESIGN.md Sec. 14) on the litmus hot
// path (the workload of bench_litmus_micro: stressed MP executions, the
// unit the Sec. 3 tuning pipeline performs millions of times):
//
//  * off: tracing disabled — the production path, which must pay only one
//    null-pointer test per notification site.
//  * on:  tracing enabled — every run records its full event stream into
//    the context's recycled EventTrace.
//
// Hard failure conditions:
//  * the two arms' weak-outcome sequences differ (tracing perturbed the
//    simulation — a determinism-contract violation), or
//  * a baseline JSON is supplied (--baseline=FILE or GPUWMM_BENCH_BASELINE)
//    and the off-arm throughput regressed more than 2% against its
//    committed off_runs_per_sec — the guard that keeps the seam
//    zero-overhead-when-off. The committed reference lives in
//    bench/baselines/ (same-machine comparisons only; see its README).
//
//===----------------------------------------------------------------------===//

#include "litmus/Litmus.h"
#include "stress/Environment.h"
#include "support/Options.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace gpuwmm;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Extracts "off_runs_per_sec": <number> from a baseline JSON (no JSON
/// dependency; the bench writes the field itself, so the shape is known).
double baselineOffRunsPerSec(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS) {
    std::fprintf(stderr, "error: cannot read baseline '%s'\n", Path.c_str());
    return -1.0;
  }
  std::ostringstream Text;
  Text << IS.rdbuf();
  const std::string Key = "\"off_runs_per_sec\": ";
  const size_t At = Text.str().find(Key);
  if (At == std::string::npos) {
    std::fprintf(stderr, "error: no off_runs_per_sec in '%s'\n",
                 Path.c_str());
    return -1.0;
  }
  return std::strtod(Text.str().c_str() + At + Key.size(), nullptr);
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const auto &Chip = *sim::ChipProfile::lookup("titan");
  const unsigned Runs = scaledCount(20000);
  const uint64_t Seed = 42;
  const litmus::Program &P = litmus::catalogProgram(litmus::LitmusKind::MP);
  const auto Tuned = stress::TunedStressParams::paperDefaults(Chip);
  const auto Stress = litmus::LitmusRunner::MicroStress::at(Tuned.Seq, 64);
  const unsigned Distance = 2 * Chip.PatchSizeWords;

  std::printf("trace overhead: %u stressed MP executions per arm, "
              "seed %llu\n\n",
              Runs, static_cast<unsigned long long>(Seed));

  // Warm the thread-local context pool so neither arm pays first-run
  // allocation.
  {
    litmus::LitmusRunner Warm(Chip, Seed);
    (void)Warm.countWeak(P, Distance, Stress, 200);
  }

  // --- Arm A: tracing off (the production path) -----------------------------
  std::vector<uint8_t> OffWeak(Runs), OnWeak(Runs);
  litmus::LitmusRunner Off(Chip, Seed);
  const double OffStart = now();
  for (unsigned I = 0; I != Runs; ++I)
    OffWeak[I] = Off.runOnce(P, Distance, Stress);
  const double OffSeconds = now() - OffStart;

  // --- Arm B: tracing on ----------------------------------------------------
  litmus::LitmusRunner On(Chip, Seed);
  litmus::LitmusRunner::RunOpts TraceOpts;
  TraceOpts.Trace = true;
  const double OnStart = now();
  for (unsigned I = 0; I != Runs; ++I)
    OnWeak[I] = On.runOnce(P, Distance, Stress, TraceOpts);
  const double OnSeconds = now() - OnStart;

  const bool Identical = OffWeak == OnWeak;
  const double OffRate = Runs / OffSeconds;
  const double OnRate = Runs / OnSeconds;
  const double OverheadPct = 100.0 * (OffSeconds > 0.0
                                          ? OnSeconds / OffSeconds - 1.0
                                          : 0.0);

  Table T({"arm", "seconds", "runs/s", "identical"});
  T.addRow({"tracing-off", formatDouble(OffSeconds, 3),
            formatDouble(OffRate, 0), "-"});
  T.addRow({"tracing-on", formatDouble(OnSeconds, 3),
            formatDouble(OnRate, 0), Identical ? "yes" : "NO"});
  T.print(std::cout);
  std::printf("\ntracing-on overhead: %+.1f%%\n", OverheadPct);

  // Optional committed-baseline guard for the off path (>2% regression
  // fails). Same-machine comparisons only — never enabled blindly in CI.
  bool BaselineOk = true;
  std::string BaselinePath = Opts.getString("baseline", "");
  if (BaselinePath.empty())
    if (const char *Env = std::getenv("GPUWMM_BENCH_BASELINE"))
      BaselinePath = Env;
  if (!BaselinePath.empty()) {
    const double Reference = baselineOffRunsPerSec(BaselinePath);
    if (Reference <= 0.0) {
      BaselineOk = false;
    } else {
      const double Ratio = OffRate / Reference;
      BaselineOk = Ratio >= 0.98;
      std::printf("off-path vs baseline %s: %.0f vs %.0f runs/s "
                  "(%+.1f%%) -> %s\n",
                  BaselinePath.c_str(), OffRate, Reference,
                  100.0 * (Ratio - 1.0),
                  BaselineOk ? "ok" : "REGRESSION (>2%)");
    }
  }

  std::printf("\n{\"bench\": \"trace_overhead\", \"runs\": %u, "
              "\"off_runs_per_sec\": %.0f, \"on_runs_per_sec\": %.0f, "
              "\"on_overhead_pct\": %.1f, \"identical\": %s}\n",
              Runs, OffRate, OnRate, OverheadPct,
              Identical ? "true" : "false");

  // Identity is the determinism contract; the baseline guard is the
  // zero-overhead-when-off contract.
  return Identical && BaselineOk ? 0 : 1;
}
