//===- bench/bench_sim_micro.cpp - Simulator micro-benchmarks -----------------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// google-benchmark micro-benchmarks of the simulator's hot paths: the cost
// of a full kernel execution dominated by loads, stores, atomics, fences
// and barriers. These bound how many litmus/application executions per
// second the experiment harnesses can sustain.
//
//===----------------------------------------------------------------------===//

#include "sim/Device.h"
#include "sim/ThreadContext.h"

#include <benchmark/benchmark.h>

using namespace gpuwmm;
using sim::Addr;
using sim::Kernel;
using sim::ThreadContext;
using sim::Word;

namespace {

const sim::ChipProfile &titan() {
  return *sim::ChipProfile::lookup("titan");
}

Kernel storeLoadKernel(ThreadContext &Ctx, Addr Base, unsigned Ops) {
  const Addr Mine = Base + Ctx.globalId();
  for (unsigned I = 0; I != Ops; ++I) {
    co_await Ctx.st(Mine, I);
    benchmark::DoNotOptimize(co_await Ctx.ld(Mine));
  }
}

Kernel atomicKernel(ThreadContext &Ctx, Addr Counter, unsigned Ops) {
  for (unsigned I = 0; I != Ops; ++I)
    benchmark::DoNotOptimize(co_await Ctx.atomicAdd(Counter, 1));
}

Kernel fenceKernel(ThreadContext &Ctx, Addr Base, unsigned Ops) {
  const Addr Mine = Base + Ctx.globalId();
  for (unsigned I = 0; I != Ops; ++I) {
    co_await Ctx.st(Mine, I);
    co_await Ctx.fence();
  }
}

Kernel barrierKernel(ThreadContext &Ctx, unsigned Ops) {
  for (unsigned I = 0; I != Ops; ++I)
    co_await Ctx.syncthreads();
}

void BM_StoreLoad(benchmark::State &State) {
  const unsigned Ops = static_cast<unsigned>(State.range(0));
  uint64_t Seed = 1;
  for (auto _ : State) {
    sim::Device Dev(titan(), Seed++);
    const Addr Base = Dev.alloc(64);
    Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return storeLoadKernel(Ctx, Base, Ops);
    });
    benchmark::DoNotOptimize(Dev.read(Base));
  }
  State.SetItemsProcessed(State.iterations() * Ops * 64 * 2);
}

void BM_AtomicContention(benchmark::State &State) {
  const unsigned Ops = static_cast<unsigned>(State.range(0));
  uint64_t Seed = 1;
  for (auto _ : State) {
    sim::Device Dev(titan(), Seed++);
    const Addr Counter = Dev.alloc(1);
    Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return atomicKernel(Ctx, Counter, Ops);
    });
    benchmark::DoNotOptimize(Dev.read(Counter));
  }
  State.SetItemsProcessed(State.iterations() * Ops * 64);
}

void BM_FenceHeavy(benchmark::State &State) {
  const unsigned Ops = static_cast<unsigned>(State.range(0));
  uint64_t Seed = 1;
  for (auto _ : State) {
    sim::Device Dev(titan(), Seed++);
    const Addr Base = Dev.alloc(64);
    Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return fenceKernel(Ctx, Base, Ops);
    });
    benchmark::DoNotOptimize(Dev.read(Base));
  }
  State.SetItemsProcessed(State.iterations() * Ops * 64 * 2);
}

void BM_Barrier(benchmark::State &State) {
  const unsigned Ops = static_cast<unsigned>(State.range(0));
  uint64_t Seed = 1;
  for (auto _ : State) {
    sim::Device Dev(titan(), Seed++);
    Dev.run({2, 32}, [=](ThreadContext &Ctx) -> Kernel {
      return barrierKernel(Ctx, Ops);
    });
  }
  State.SetItemsProcessed(State.iterations() * Ops * 64);
}

BENCHMARK(BM_StoreLoad)->Arg(16)->Arg(64);
BENCHMARK(BM_AtomicContention)->Arg(16)->Arg(64);
BENCHMARK(BM_FenceHeavy)->Arg(16);
BENCHMARK(BM_Barrier)->Arg(16);

} // namespace

BENCHMARK_MAIN();
