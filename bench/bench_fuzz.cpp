//===- bench/bench_fuzz.cpp - Random-program weak-behaviour fuzzing -----------===//
//
// Part of the gpuwmm project, a reproduction of "Exposing Errors Related to
// Weak Memory in GPU Applications" (Sorensen & Donaldson, PLDI 2016).
//
// Extension experiment (the "fuzzing" of the paper's title, generalised
// beyond the three litmus idioms): generate random two-thread programs,
// enumerate their SC outcomes exhaustively, and measure how often the
// native machine vs. the tuned testing environment produce outcomes
// outside the SC set. The paper's black-box claim predicts the tuned
// environment needs no knowledge of the program to expose its weak
// behaviours — this experiment checks that on programs nobody wrote.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramFuzzer.h"
#include "support/Options.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace gpuwmm;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  const std::string ChipName = Opts.getString("chip", "titan");
  const unsigned Programs =
      static_cast<unsigned>(Opts.getInt("programs", scaledCount(40)));
  const unsigned Runs =
      static_cast<unsigned>(Opts.getInt("runs", scaledCount(40)));
  const uint64_t Seed = static_cast<uint64_t>(Opts.getInt("seed", 101));

  const sim::ChipProfile *Chip = sim::ChipProfile::lookup(ChipName);
  if (!Chip) {
    std::fprintf(stderr, "error: unknown chip '%s'\n", ChipName.c_str());
    return 1;
  }

  std::printf("== Random-program fuzzing on %s: %u programs x %u runs ==\n\n",
              Chip->Name, Programs, Runs);

  Rng Gen(Seed);
  unsigned NativeWeakProgs = 0, StressedWeakProgs = 0;
  uint64_t NativeWeakRuns = 0, StressedWeakRuns = 0;
  unsigned FencedViolations = 0;

  for (unsigned I = 0; I != Programs; ++I) {
    const fuzz::Program P = fuzz::Program::generate(Gen, 3, 5, false);
    const auto Native =
        fuzz::fuzzProgram(P, *Chip, Runs, Rng::deriveStream(Seed, 2 * I),
                          /*Stressed=*/false);
    const auto Stressed =
        fuzz::fuzzProgram(P, *Chip, Runs, Rng::deriveStream(Seed, 2 * I),
                          /*Stressed=*/true);
    const auto Fenced = fuzz::fuzzProgram(P.fullyFenced(), *Chip,
                                          /*Runs=*/8,
                                          Rng::deriveStream(Seed, 2 * I + 1), true);
    NativeWeakProgs += Native.WeakOutcomes > 0;
    StressedWeakProgs += Stressed.WeakOutcomes > 0;
    NativeWeakRuns += Native.WeakOutcomes;
    StressedWeakRuns += Stressed.WeakOutcomes;
    FencedViolations += Fenced.WeakOutcomes;
  }

  Table T({"configuration", "programs with weak outcomes",
           "weak runs (total)"});
  T.addRow({"native (no-str-)",
            std::to_string(NativeWeakProgs) + "/" +
                std::to_string(Programs),
            std::to_string(NativeWeakRuns)});
  T.addRow({"tuned stress (sys-str+)",
            std::to_string(StressedWeakProgs) + "/" +
                std::to_string(Programs),
            std::to_string(StressedWeakRuns)});
  T.addRow({"fully fenced + sys-str+", "0/" + std::to_string(Programs),
            std::to_string(FencedViolations) + " (must be 0)"});
  T.print(std::cout);

  std::printf("\nShape to check: the tuned environment exposes non-SC "
              "outcomes on far more programs and runs than native "
              "execution, and a fence after every access eliminates them "
              "entirely (model soundness).\n");
  return FencedViolations == 0 ? 0 : 1;
}
